package temporal

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func roundTrip(t *testing.T, n *Network) *Network {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v\ninput:\n%s", err, buf.String())
	}
	return back
}

func networksEqual(a, b *Network) bool {
	if a.Graph().N() != b.Graph().N() || a.Graph().M() != b.Graph().M() {
		return false
	}
	if a.Graph().Directed() != b.Graph().Directed() || a.Lifetime() != b.Lifetime() {
		return false
	}
	for e := 0; e < a.Graph().M(); e++ {
		au, av := a.Graph().Endpoints(e)
		bu, bv := b.Graph().Endpoints(e)
		if au != bu || av != bv {
			return false
		}
		al, bl := a.EdgeLabels(e), b.EdgeLabels(e)
		if len(al) != len(bl) {
			return false
		}
		for i := range al {
			if al[i] != bl[i] {
				return false
			}
		}
	}
	return true
}

func TestRoundTripBasic(t *testing.T) {
	n := pathNet(t, 10, [][]int{{2, 7}, {5}})
	if !networksEqual(n, roundTrip(t, n)) {
		t.Fatal("round trip lost information")
	}
}

func TestRoundTripEmptyLabels(t *testing.T) {
	// An edge with no labels must survive.
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	n := MustNew(b.Build(), 5, LabelingFromSets([][]int{{}, {3}}))
	back := roundTrip(t, n)
	if len(back.EdgeLabels(0)) != 0 || len(back.EdgeLabels(1)) != 1 {
		t.Fatal("empty label set not preserved")
	}
}

func TestRoundTripNoEdges(t *testing.T) {
	n := MustNew(graph.NewBuilder(4, true).Build(), 7, LabelingFromSets(nil))
	back := roundTrip(t, n)
	if back.Graph().N() != 4 || back.Graph().M() != 0 || back.Lifetime() != 7 {
		t.Fatal("edgeless network not preserved")
	}
}

func TestReadWithCommentsAndBlanks(t *testing.T) {
	input := `# a temporal network
tnet 1 directed 3 2 9

# edges
0 1 2 4
1 2 5
`
	n, err := Decode(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n.Graph().N() != 3 || n.Graph().M() != 2 || n.Lifetime() != 9 {
		t.Fatalf("parsed %v", n)
	}
	if got := n.EdgeLabels(0); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("labels = %v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad-magic", "foo 1 directed 2 1 5\n0 1 1\n"},
		{"bad-version", "tnet 2 directed 2 1 5\n0 1 1\n"},
		{"bad-kind", "tnet 1 mixed 2 1 5\n0 1 1\n"},
		{"bad-n", "tnet 1 directed x 1 5\n0 1 1\n"},
		{"bad-lifetime", "tnet 1 directed 2 1 0\n0 1 1\n"},
		{"missing-edge", "tnet 1 directed 2 1 5\n"},
		{"short-edge-line", "tnet 1 directed 2 1 5\n0\n"},
		{"bad-endpoint", "tnet 1 directed 2 1 5\n0 7 1\n"},
		{"self-loop", "tnet 1 directed 2 1 5\n1 1 1\n"},
		{"bad-label", "tnet 1 directed 2 1 5\n0 1 x\n"},
		{"label-out-of-range", "tnet 1 directed 2 1 5\n0 1 9\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("Decode accepted %q", tc.in)
			}
		})
	}
}

func TestWrittenFormIsStable(t *testing.T) {
	n := pathNet(t, 10, [][]int{{7, 2}, {5}})
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	want := "tnet 1 directed 3 2 10\n0 1 2 7\n1 2 5\n"
	if buf.String() != want {
		t.Fatalf("serialized form:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// Property: write→read is the identity on random networks and preserves
// earliest arrivals (semantic equality, not just structural).
func TestQuickRoundTripSemantics(t *testing.T) {
	f := func(seed uint64, directed bool) bool {
		n := randomNetwork(seed, 12, directed)
		var buf bytes.Buffer
		if err := n.Encode(&buf); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil {
			return false
		}
		if !networksEqual(n, back) {
			return false
		}
		for s := 0; s < n.Graph().N(); s++ {
			a, b := n.EarliestArrivals(s), back.EarliestArrivals(s)
			for v := range a {
				if a[v] != b[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrarily mutated serializations —
// it either errors or returns a structurally valid network.
func TestQuickDecodeRobustToMutation(t *testing.T) {
	base := func(seed uint64) []byte {
		n := randomNetwork(seed, 8, seed%2 == 0)
		var buf bytes.Buffer
		if err := n.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	f := func(seed uint64, pos uint16, repl byte) bool {
		data := base(seed)
		if len(data) == 0 {
			return true
		}
		data[int(pos)%len(data)] = repl
		net, err := Decode(bytes.NewReader(data))
		if err != nil {
			return true // rejecting corrupt input is correct
		}
		// Accepted input must yield a usable network.
		if net.Graph().N() < 0 || net.Lifetime() < 1 {
			return false
		}
		for e := 0; e < net.Graph().M(); e++ {
			for _, l := range net.EdgeLabels(e) {
				if l < 1 || int(l) > net.Lifetime() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: truncating a serialization at any byte never panics Decode.
func TestQuickDecodeRobustToTruncation(t *testing.T) {
	n := pathNet(t, 10, [][]int{{2, 7}, {5}})
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut <= len(data); cut++ {
		if net, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			// Only the full serialization (modulo the trailing newline,
			// which the line scanner tolerates) round-trips to 2 edges
			// with all 3 labels.
			if cut < len(data)-1 && net.Graph().M() == 2 && net.LabelCount() == 3 {
				t.Fatalf("truncation at %d decoded the complete network", cut)
			}
		}
	}
}
