package temporal

import (
	"fmt"

	"repro/internal/obs"
)

// EdgeDelta describes a combined topology + label change for RelabelEdges:
// the support graph loses the edges whose current identifiers appear in
// Remove, gains the edges (InsertFrom[i], InsertTo[i]), and the whole
// network is relabeled with Labels.
//
// The contract mirrors graph.ApplyEdgeDelta, because edge identifiers are
// positional: Remove is strictly ascending; the inserted edges are in
// canonical undirected order (InsertFrom[i] < InsertTo[i], strictly
// ascending lexicographically) and not already present. Labels is the FULL
// post-delta labeling — one CSR run per post-delta edge, in post-delta
// identifier order (the order a fresh graph.Builder fed the merged edge
// list would assign). Carrying the full labeling rather than a
// surviving/inserted split is deliberate: the incremental scenario models
// that drive this path (avail.IncrementalScenario) redraw every edge's
// labels each trial anyway, and their generators emit edges in canonical
// order, so the full labeling is free and the delta needs no
// label-rearrangement pass.
//
// None of the slices are retained; callers may overwrite them immediately
// after the call, which is what the per-trial scenario loop does.
type EdgeDelta struct {
	Remove               []int32
	InsertFrom, InsertTo []int32
	Labels               Labeling
}

// ChurnRebuildThreshold is the churn fraction — (removed + inserted) /
// max(old M, new M) — above which RelabelEdges abandons the merge patch and
// rebuilds the CSR wholesale. The patch saves work by splicing adjacency
// runs sequentially, but once most runs move anyway the straight-line
// counting rebuild (graph.ReplaceEdges) is cheaper and touches memory in
// exactly one pattern. Independent Monte-Carlo trials of the geometric
// scenario churn ~everything and always take the rebuild route; the patch
// route serves small per-step deltas (trace replay, single-walker moves).
const ChurnRebuildThreshold = 0.25

var obsRelabelEdges = obs.NewCounterVec("temporal_relabel_edges_total",
	"RelabelEdges calls by graph-mutation route (patch, rebuild).", "route")

var (
	obsRelabelEdgesPatch   = obsRelabelEdges.With("patch")
	obsRelabelEdgesRebuild = obsRelabelEdges.With("rebuild")
)

// RelabelEdges is Relabel's topology-delta variant: it applies an edge
// insert/remove set to the network's OWN support graph in place, replaces
// the label assignment, and leaves every temporal index to the same lazy
// double-checked rebuild machinery Relabel uses — the label histogram is
// fused into validation here, the counting-sorted time-edge list and the
// per-vertex CSR are rebuilt over existing buffers on first kernel use.
// Queries afterwards are bit-identical to queries on a network freshly
// built from the merged edge list (identical edge identifiers included),
// pinned by the differential and fuzz tests.
//
// Two routes mutate the graph. Below ChurnRebuildThreshold the packed
// adjacency is patched by sequential merge splices (graph.ApplyEdgeDelta);
// above it — the steady state for independent mobility trials — the CSR is
// rebuilt in place over its buffers (graph.ReplaceEdges). Either way a
// steady-state call allocates nothing.
//
// Requirements beyond Relabel's: the network must be undirected and its
// edge list canonically ordered (from < to, lexicographically strictly
// ascending) — true of every scenario-generated graph and preserved by
// RelabelEdges itself. Validation runs before any mutation, so a failed
// call leaves network and graph unchanged.
//
// CAUTION — unlike Relabel, this mutates *n.Graph() itself. The graph must
// be exclusively owned by this network and this caller (sim.BatchRunner
// gives each worker its own); anything derived from the old topology
// (StaticReach, cached adjacency, slices from FromArray/ToArray) is
// invalidated even though the pointer is unchanged. Exclusive access is
// required during the call, exactly as for Relabel.
func (n *Network) RelabelEdges(d EdgeDelta) error {
	g := n.g
	if g.Directed() {
		return fmt.Errorf("temporal: RelabelEdges requires an undirected network")
	}
	m := g.M()
	newM := m - len(d.Remove) + len(d.InsertFrom)
	if len(d.InsertFrom) != len(d.InsertTo) {
		return fmt.Errorf("temporal: %d insert sources but %d targets", len(d.InsertFrom), len(d.InsertTo))
	}
	for i, r := range d.Remove {
		if r < 0 || int(r) >= m {
			return fmt.Errorf("temporal: remove id %d out of range [0,%d)", r, m)
		}
		if i > 0 && r <= d.Remove[i-1] {
			return fmt.Errorf("temporal: remove ids not strictly ascending at %d", r)
		}
	}
	nv := int32(g.N())
	prev := int64(-1)
	for i := range d.InsertFrom {
		u, v := d.InsertFrom[i], d.InsertTo[i]
		if u < 0 || u >= nv || v < 0 || v >= nv || u >= v {
			return fmt.Errorf("temporal: insert (%d,%d) not canonical for n=%d", u, v, nv)
		}
		k := int64(u)*int64(nv) + int64(v)
		if k <= prev {
			return fmt.Errorf("temporal: inserts not strictly ascending at (%d,%d)", u, v)
		}
		prev = k
	}
	if err := validateLabelingShape(newM, d.Labels); err != nil {
		return err
	}
	// Fused label-range validation + histogram, exactly as Relabel: scratch
	// only, so the network is untouched if anything below fails; histValid
	// flips true only once the whole delta has been applied.
	counts := growI32(n.teCounts, int(n.lifetime)+2)
	clear(counts)
	n.teCounts = counts
	n.histValid = false
	for _, l := range d.Labels.Labels {
		if l < 1 || l > n.lifetime {
			return fmt.Errorf("temporal: label %d outside [1,%d]", l, n.lifetime)
		}
		counts[l+1]++
	}

	churn := len(d.Remove) + len(d.InsertFrom)
	denom := max(m, newM, 1)
	if float64(churn) > ChurnRebuildThreshold*float64(denom) {
		if err := n.rebuildMerged(d, newM); err != nil {
			return err
		}
		obsRelabelEdgesRebuild.Inc()
	} else {
		if err := g.ApplyEdgeDelta(d.Remove, d.InsertFrom, d.InsertTo); err != nil {
			return err
		}
		obsRelabelEdgesPatch.Inc()
	}

	n.histValid = true
	n.off = growI32(n.off, len(d.Labels.Off))
	copy(n.off, d.Labels.Off)
	n.labels = growI32(n.labels, len(d.Labels.Labels))
	copy(n.labels, d.Labels.Labels)
	n.labSorted.Store(false)
	n.teClean.Store(false)
	n.vteClean.Store(false)
	return nil
}

// rebuildMerged materializes the post-delta edge list into retained scratch
// by the same canonical merge walk graph.ApplyEdgeDelta performs — which
// also verifies the current list is canonical — then hands it to
// graph.ReplaceEdges for the in-place counting rebuild.
func (n *Network) rebuildMerged(d EdgeDelta, newM int) error {
	g := n.g
	from, to := g.FromArray(), g.ToArray()
	nv := int64(g.N())
	n.deltaFrom = growI32(n.deltaFrom, newM)
	n.deltaTo = growI32(n.deltaTo, newM)
	nf, nt := n.deltaFrom, n.deltaTo
	ri, ii, out := 0, 0, 0
	prev := int64(-1)
	for e := range from {
		if from[e] >= to[e] {
			return fmt.Errorf("temporal: RelabelEdges requires canonical edges; edge %d is (%d,%d)", e, from[e], to[e])
		}
		k := int64(from[e])*nv + int64(to[e])
		if k <= prev {
			return fmt.Errorf("temporal: RelabelEdges requires canonical edges; order breaks at edge %d", e)
		}
		prev = k
		if ri < len(d.Remove) && int(d.Remove[ri]) == e {
			ri++
			continue
		}
		for ii < len(d.InsertFrom) && int64(d.InsertFrom[ii])*nv+int64(d.InsertTo[ii]) < k {
			nf[out], nt[out] = d.InsertFrom[ii], d.InsertTo[ii]
			out++
			ii++
		}
		if ii < len(d.InsertFrom) && int64(d.InsertFrom[ii])*nv+int64(d.InsertTo[ii]) == k {
			return fmt.Errorf("temporal: insert (%d,%d) already present", d.InsertFrom[ii], d.InsertTo[ii])
		}
		nf[out], nt[out] = from[e], to[e]
		out++
	}
	for ii < len(d.InsertFrom) {
		nf[out], nt[out] = d.InsertFrom[ii], d.InsertTo[ii]
		out++
		ii++
	}
	return g.ReplaceEdges(nf, nt)
}
