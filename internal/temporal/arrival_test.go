package temporal

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEarliestArrivalsDirectedChain(t *testing.T) {
	// 0 -(5)-> 1 -(3)-> 2 : the second label is too early, 2 unreachable.
	n := pathNet(t, 10, [][]int{{5}, {3}})
	arr := n.EarliestArrivals(0)
	if arr[0] != 0 || arr[1] != 5 || arr[2] != Unreachable {
		t.Fatalf("arr = %v", arr)
	}
	// 0 -(5)-> 1 -(7)-> 2 : reachable at 7.
	n = pathNet(t, 10, [][]int{{5}, {7}})
	arr = n.EarliestArrivals(0)
	if arr[2] != 7 {
		t.Fatalf("arr = %v", arr)
	}
}

func TestEqualLabelsDoNotChain(t *testing.T) {
	// Strictly increasing labels required: 4 then 4 must not chain.
	n := pathNet(t, 10, [][]int{{4}, {4}})
	arr := n.EarliestArrivals(0)
	if arr[1] != 4 {
		t.Fatalf("arr[1] = %d, want 4", arr[1])
	}
	if arr[2] != Unreachable {
		t.Fatalf("arr[2] = %d, want Unreachable (labels must strictly increase)", arr[2])
	}
}

func TestEarliestArrivalsPicksBestAmongLabels(t *testing.T) {
	// Multi-label edges: earliest feasible label wins.
	n := pathNet(t, 20, [][]int{{2, 9}, {5, 6, 18}})
	arr := n.EarliestArrivals(0)
	if arr[1] != 2 {
		t.Fatalf("arr[1] = %d, want 2", arr[1])
	}
	if arr[2] != 5 {
		t.Fatalf("arr[2] = %d, want 5", arr[2])
	}
}

func TestEarliestArrivalsUndirectedBothWays(t *testing.T) {
	// Undirected path 0-1-2, labels {3}, {6}: both directions work.
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	n := MustNew(b.Build(), 10, LabelingFromSets([][]int{{3}, {6}}))
	arr := n.EarliestArrivals(0)
	if arr[2] != 6 {
		t.Fatalf("forward arr = %v", arr)
	}
	// Reverse direction: 2 -(6)-> 1 fails to continue (3 < 6): 0 unreachable.
	arr = n.EarliestArrivals(2)
	if arr[1] != 6 || arr[0] != Unreachable {
		t.Fatalf("backward arr = %v", arr)
	}
}

func TestDirectFlightVersusLayover(t *testing.T) {
	// Triangle: direct edge late (9), two-hop route earlier (2 then 4).
	b := graph.NewBuilder(3, false)
	e01 := b.AddEdge(0, 1)
	e12 := b.AddEdge(1, 2)
	e02 := b.AddEdge(0, 2)
	g := b.Build()
	sets := make([][]int, 3)
	sets[e01] = []int{2}
	sets[e12] = []int{4}
	sets[e02] = []int{9}
	n := MustNew(g, 10, LabelingFromSets(sets))
	arr := n.EarliestArrivals(0)
	if arr[2] != 4 {
		t.Fatalf("arr[2] = %d, want 4 (two-hop beats direct)", arr[2])
	}
}

func TestEarliestArrivalsIntoReusesScratch(t *testing.T) {
	n := pathNet(t, 10, [][]int{{1}, {2}})
	arr := make([]int32, 3)
	if got := n.EarliestArrivalsInto(0, arr); got != 3 {
		t.Fatalf("reached = %d, want 3", got)
	}
	// Second call from a different source must fully reset scratch.
	if got := n.EarliestArrivalsInto(2, arr); got != 1 {
		t.Fatalf("reached from sink = %d, want 1", got)
	}
	if arr[0] != Unreachable || arr[1] != Unreachable || arr[2] != 0 {
		t.Fatalf("arr = %v", arr)
	}
}

func TestForemostJourneyChain(t *testing.T) {
	n := pathNet(t, 20, [][]int{{2, 9}, {5, 6, 18}})
	j, ok := n.ForemostJourney(0, 2)
	if !ok {
		t.Fatal("journey not found")
	}
	if err := j.Validate(n); err != nil {
		t.Fatalf("invalid journey: %v", err)
	}
	if j.ArrivalTime() != 5 {
		t.Fatalf("arrival = %d, want 5", j.ArrivalTime())
	}
	if j.From() != 0 || j.To() != 2 {
		t.Fatalf("endpoints = %d,%d", j.From(), j.To())
	}
	if len(j) != 2 {
		t.Fatalf("journey = %v", j)
	}
}

func TestForemostJourneyUnreachable(t *testing.T) {
	n := pathNet(t, 10, [][]int{{4}, {4}})
	if _, ok := n.ForemostJourney(0, 2); ok {
		t.Fatal("journey should not exist")
	}
}

func TestForemostJourneyTrivial(t *testing.T) {
	n := pathNet(t, 10, [][]int{{4}, {5}})
	j, ok := n.ForemostJourney(1, 1)
	if !ok || len(j) != 0 || j.ArrivalTime() != 0 {
		t.Fatalf("trivial journey = %v,%v", j, ok)
	}
}

func TestForemostJourneyUndirectedTraversalAgainstStorage(t *testing.T) {
	// Edge stored as (0,1) but journey goes 1→0.
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1)
	n := MustNew(b.Build(), 5, LabelingFromSets([][]int{{3}}))
	j, ok := n.ForemostJourney(1, 0)
	if !ok {
		t.Fatal("journey not found")
	}
	if err := j.Validate(n); err != nil {
		t.Fatalf("invalid journey: %v", err)
	}
	if j[0].From != 1 || j[0].To != 0 || j[0].Label != 3 {
		t.Fatalf("hop = %+v", j[0])
	}
}

func TestJourneyValidateRejectsBadJourneys(t *testing.T) {
	n := pathNet(t, 10, [][]int{{2}, {5}})
	cases := []struct {
		name string
		j    Journey
	}{
		{"bad-edge-id", Journey{{From: 0, To: 1, Edge: 99, Label: 2}}},
		{"wrong-endpoints", Journey{{From: 0, To: 2, Edge: 0, Label: 2}}},
		{"missing-label", Journey{{From: 0, To: 1, Edge: 0, Label: 3}}},
		{"broken-chain", Journey{
			{From: 0, To: 1, Edge: 0, Label: 2},
			{From: 0, To: 1, Edge: 0, Label: 2},
		}},
		{"non-increasing", Journey{
			{From: 0, To: 1, Edge: 0, Label: 2},
			{From: 1, To: 2, Edge: 1, Label: 2},
		}},
		{"directed-against-arc", Journey{{From: 1, To: 0, Edge: 0, Label: 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.j.Validate(n); err == nil {
				t.Fatal("Validate accepted a bad journey")
			}
		})
	}
	if err := (Journey{}).Validate(n); err != nil {
		t.Fatalf("empty journey should validate: %v", err)
	}
}

func TestJourneyString(t *testing.T) {
	j := Journey{
		{From: 0, To: 1, Edge: 0, Label: 2},
		{From: 1, To: 2, Edge: 1, Label: 5},
	}
	if got := j.String(); got != "0 -(2)-> 1 -(5)-> 2" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Journey{}).String(); got != "(empty journey)" {
		t.Fatalf("empty String() = %q", got)
	}
}

// randomNetwork builds a random temporal network for property tests.
func randomNetwork(seed uint64, nMax int, directed bool) *Network {
	r := rng.New(seed)
	n := r.Intn(nMax-1) + 2
	g := graph.Gnp(n, 0.4, directed, r)
	lifetime := r.Intn(2*n) + 1
	sets := make([][]int, g.M())
	for e := range sets {
		cnt := r.Intn(3) // 0..2 labels per edge
		for k := 0; k < cnt; k++ {
			sets[e] = append(sets[e], 1+r.Intn(lifetime))
		}
	}
	return MustNew(g, lifetime, LabelingFromSets(sets))
}

// Property: the single-pass kernel agrees with the order-independent
// fixpoint reference on random networks, directed and undirected.
func TestQuickKernelAgreesWithFixpoint(t *testing.T) {
	f := func(seed uint64, directed bool) bool {
		net := randomNetwork(seed, 14, directed)
		for s := 0; s < net.Graph().N(); s++ {
			got := net.EarliestArrivals(s)
			want := net.earliestArrivalsFixpoint(s)
			for v := range got {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: every ForemostJourney validates and arrives exactly at δ(s,t).
func TestQuickForemostJourneyValidates(t *testing.T) {
	f := func(seed uint64, directed bool) bool {
		net := randomNetwork(seed, 12, directed)
		nv := net.Graph().N()
		for s := 0; s < nv; s++ {
			arr := net.EarliestArrivals(s)
			for v := 0; v < nv; v++ {
				j, ok := net.ForemostJourney(s, v)
				if ok != (arr[v] != Unreachable) {
					return false
				}
				if !ok {
					continue
				}
				if err := j.Validate(net); err != nil {
					return false
				}
				if v != s && j.ArrivalTime() != arr[v] {
					return false
				}
				if v != s && (j.From() != s || j.To() != v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: time-reversal duality — t reachable from s in N iff s reachable
// from t in N.Reverse().
func TestQuickReverseDuality(t *testing.T) {
	f := func(seed uint64, directed bool) bool {
		net := randomNetwork(seed, 12, directed)
		rev := net.Reverse()
		nv := net.Graph().N()
		for s := 0; s < nv; s++ {
			fwd := net.EarliestArrivals(s)
			for v := 0; v < nv; v++ {
				back := rev.EarliestArrivals(v)
				if (fwd[v] == Unreachable) != (back[s] == Unreachable) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: arrival times are monotone under label addition — adding labels
// can only help (or leave unchanged) every δ(s,v).
func TestQuickMonotoneUnderMoreLabels(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 3
		g := graph.Gnp(n, 0.5, false, r)
		lifetime := n + 2
		base := make([][]int, g.M())
		richer := make([][]int, g.M())
		for e := range base {
			if r.Bernoulli(0.7) {
				l := 1 + r.Intn(lifetime)
				base[e] = append(base[e], l)
				richer[e] = append(richer[e], l)
			}
			// richer gets an extra label.
			richer[e] = append(richer[e], 1+r.Intn(lifetime))
		}
		nb := MustNew(g, lifetime, LabelingFromSets(base))
		nr := MustNew(g, lifetime, LabelingFromSets(richer))
		for s := 0; s < n; s++ {
			ab := nb.EarliestArrivals(s)
			ar := nr.EarliestArrivals(s)
			for v := range ab {
				if ar[v] > ab[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
