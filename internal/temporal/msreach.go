package temporal

// The bit-parallel multi-source reachability kernel (MS-BFS style): up to
// 64 sources share one pass, each vertex carrying one uint64 of source
// bits. Two word kernels cooperate:
//
//   - temporalReachWords answers "which sources have a journey to v" with
//     one scan of the label-sorted time-edge list. Within one label group
//     the strictly-increasing-label rule forbids chaining, so new arrivals
//     are staged in a pending word and merged only at group boundaries.
//     The pass stops early once every vertex holds every source bit — on
//     dense cliques that happens after a small label prefix.
//   - staticReachWords answers "which sources have a static path to v"
//     with a chaotic-order worklist closure: each source bit crosses each
//     arc at most once, so a batch costs at most what 64 separate BFS
//     passes would, and typically far less.
//
// SatisfiesTreach, TreachViolations and ReachableSets run on batches of
// these words: ⌈n/64⌉ passes over the time edges instead of n.

import (
	"math/bits"
	"sync"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// batchSize is the number of sources one word pass answers.
const batchSize = 64

// reachScratch holds the per-batch work arrays of the word kernels.
type reachScratch struct {
	cur   []uint64 // temporal: bits arrived strictly before the current label
	pend  []uint64 // temporal: bits arriving at the current label
	stat  []uint64 // static closure bits
	sPend []uint64 // static: bits not yet propagated
	dirty []int32  // temporal: vertices with pending bits
	front []int32  // static: current BFS frontier
	next  []int32  // static: next BFS frontier
	srcs  []int32  // batch source buffer
}

var reachPool = sync.Pool{New: func() any { return new(reachScratch) }}

func (sc *reachScratch) ensure(n int) {
	if cap(sc.cur) < n {
		sc.cur = make([]uint64, n)
		sc.pend = make([]uint64, n)
		sc.stat = make([]uint64, n)
		sc.sPend = make([]uint64, n)
	}
}

// fullMask returns the word with one bit per batch source.
func fullMask(k int) uint64 { return ^uint64(0) >> (64 - uint(k)) }

// temporalReachWords fills sc.cur[v] with a bit per source whose journeys
// reach v. sources must hold between 1 and 64 vertices.
func (n *Network) temporalReachWords(sources []int32, sc *reachScratch) {
	n.ensureTimeEdges()
	nv := n.g.N()
	sc.ensure(nv)
	cur, pend := sc.cur[:nv], sc.pend[:nv]
	clear(cur)
	clear(pend)
	full := fullMask(len(sources))
	for j, s := range sources {
		cur[s] |= 1 << uint(j)
	}
	fullCount := 0
	for _, w := range cur {
		if w == full {
			fullCount++
		}
	}
	if fullCount == nv {
		return
	}
	from, to := n.g.FromArray(), n.g.ToArray()
	directed := n.g.Directed()
	dirty := sc.dirty[:0]
	group := int32(0)
	for i, e := range n.teEdge {
		if l := n.teLabel[i]; l != group {
			// Label-group boundary: arrivals at the previous label become
			// usable for departures from here on.
			for _, v := range dirty {
				w := cur[v] | pend[v]
				if w == full && cur[v] != full {
					fullCount++
				}
				cur[v] = w
				pend[v] = 0
			}
			dirty = dirty[:0]
			if fullCount == nv {
				break
			}
			group = l
		}
		u, v := from[e], to[e]
		if add := cur[u] &^ (cur[v] | pend[v]); add != 0 {
			if pend[v] == 0 {
				dirty = append(dirty, v)
			}
			pend[v] |= add
		}
		if !directed {
			if add := cur[v] &^ (cur[u] | pend[u]); add != 0 {
				if pend[u] == 0 {
					dirty = append(dirty, u)
				}
				pend[u] |= add
			}
		}
	}
	for _, v := range dirty {
		cur[v] |= pend[v]
		pend[v] = 0
	}
	sc.dirty = dirty[:0]
}

// staticReachWords fills sc.stat[v] with a bit per source that has a
// static path to v: level-synchronized MS-BFS, so each vertex propagates
// one merged word per wave instead of dribbling bits one arrival at a
// time, and the pass stops as soon as every vertex holds every source bit
// (one wave on a clique).
func staticReachWords(g *graph.Graph, sources []int32, sc *reachScratch) {
	nv := g.N()
	sc.ensure(nv)
	stat, pend := sc.stat[:nv], sc.sPend[:nv]
	clear(stat)
	clear(pend)
	full := fullMask(len(sources))
	frontier, next := sc.front[:0], sc.next[:0]
	for j, s := range sources {
		if pend[s] == 0 {
			frontier = append(frontier, s)
		}
		b := uint64(1) << uint(j)
		stat[s] |= b
		pend[s] |= b
	}
	fullCount := 0
	for _, v := range frontier {
		if stat[v] == full {
			fullCount++
		}
	}
	for len(frontier) > 0 && fullCount < nv {
		next = next[:0]
		for _, u := range frontier {
			bitsU := pend[u]
			pend[u] = 0
			for _, v := range g.OutNeighbors(int(u)) {
				if add := bitsU &^ stat[v]; add != 0 {
					w := stat[v] | add
					stat[v] = w
					if w == full {
						fullCount++
					}
					if pend[v] == 0 {
						next = append(next, v)
					}
					pend[v] |= add
				}
			}
		}
		frontier, next = next, frontier
	}
	sc.front, sc.next = frontier[:0], next[:0]
}

// batch fills sc.srcs with the consecutive sources [lo, hi).
func (sc *reachScratch) batch(lo, hi int) []int32 {
	sc.srcs = sc.srcs[:0]
	for s := lo; s < hi; s++ {
		sc.srcs = append(sc.srcs, int32(s))
	}
	return sc.srcs
}

// treachBatch runs both word kernels for one source batch and returns the
// number of (source, target) pairs with a static path but no journey.
// With countAll false it stops at the first violated word and returns 1.
func (n *Network) treachBatch(sources []int32, sc *reachScratch, countAll bool) int {
	n.temporalReachWords(sources, sc)
	staticReachWords(n.g, sources, sc)
	nv := n.g.N()
	bad := 0
	for v := 0; v < nv; v++ {
		if d := sc.stat[v] &^ sc.cur[v]; d != 0 {
			if !countAll {
				return 1
			}
			bad += bits.OnesCount64(d)
		}
	}
	return bad
}

// ReachableSets returns, for each source, the set of vertices a journey
// from it reaches (including the source), computed 64 sources per pass
// with the bit-parallel kernel.
func ReachableSets(n *Network, sources []int) []*bitset.Set {
	nv := n.g.N()
	out := make([]*bitset.Set, len(sources))
	sc := reachPool.Get().(*reachScratch)
	defer reachPool.Put(sc)
	for lo := 0; lo < len(sources); lo += batchSize {
		hi := lo + batchSize
		if hi > len(sources) {
			hi = len(sources)
		}
		sc.srcs = sc.srcs[:0]
		for _, s := range sources[lo:hi] {
			sc.srcs = append(sc.srcs, int32(s))
		}
		n.temporalReachWords(sc.srcs, sc)
		for j := range sources[lo:hi] {
			set := bitset.New(nv)
			bit := uint64(1) << uint(j)
			for v := 0; v < nv; v++ {
				if sc.cur[v]&bit != 0 {
					set.Add(v)
				}
			}
			out[lo+j] = set
		}
	}
	return out
}
