// Package repro is a production-quality Go reproduction of
//
//	E. C. Akrida, L. Gąsieniec, G. B. Mertzios, P. G. Spirakis,
//	"Ephemeral Networks with Random Availability of Links: Diameter and
//	Connectivity", SPAA 2014, pp. 267–276.
//
// The repository implements the paper's model (random temporal networks
// over ephemeral graphs), its algorithms (the Expansion Process, the
// flooding protocol, box labelings), every substrate the results rest on
// (static graph algorithms, Erdős–Rényi connectivity, the random
// phone-call model), and a benchmark harness regenerating an empirical
// analogue of every theorem and figure.
//
// Layout:
//
//	internal/graph       static (di)graphs: CSR, generators, BFS/SCC/diameter
//	internal/temporal    temporal networks: labels, journeys, and the
//	                     earliest-arrival engine — a frontier (bucket-queue)
//	                     kernel over a per-vertex time-edge index, a
//	                     bit-parallel 64-sources-per-word reachability
//	                     kernel, a sync.Pool scratch layer for zero-alloc
//	                     all-pairs sweeps (diameter, Treach), the
//	                     linear-scan oracle they are differentially
//	                     tested against, and Network.Relabel — the
//	                     in-place, lazily re-indexed relabeling path the
//	                     batched trial engine drives (plus StaticReach,
//	                     the substrate-side Treach cache)
//	internal/assign      label assigners: UNI-CASE/F-CASE random, box labelings,
//	                     star optima, double-tour OPT witnesses
//	internal/core        the paper's contributions (Algorithm 1, §3.5 spreading,
//	                     Theorem 5 prefix machinery, Price of Randomness)
//	internal/phonecall   PUSH / PUSH-PULL rumor spreading baselines
//	internal/dist        label distributions for the F-CASE, with analytic
//	                     PMFs for the chi-square conformance suite
//	internal/avail       availability-model registry: i.i.d. laws, Markov
//	                     on/off link dynamics, time-varying p(t) schedules,
//	                     and the dynamic geometric (torus random-walk)
//	                     scenario, all bit-deterministic per stream
//	internal/rng         deterministic splittable randomness
//	internal/sim         parallel Monte-Carlo harness
//	internal/stats       samples, streaming Welford estimators, Wilson and
//	                     Student-t confidence intervals, regression, and
//	                     chi-square goodness-of-fit machinery
//	internal/sweep       adaptive estimation engine: CI-driven Monte-Carlo
//	                     trial loops that stop at a requested precision,
//	                     threshold bisection over monotone responses, and
//	                     resumable parameter grids with JSON checkpoints —
//	                     bit-deterministic for any worker count and across
//	                     checkpoint/resume splits
//	internal/table       ASCII/CSV/Markdown/JSON tables and ASCII plots
//	internal/experiments experiment drivers E1–E18, the
//	                     context-aware Run wrapper with per-trial progress,
//	                     and the SweepTarget bridge from sweep specs to
//	                     availability-model measurements
//	internal/service     experiment service: job manager over a bounded
//	                     worker pool, LRU result cache keyed by the
//	                     canonical request (experiment Config or sweep
//	                     spec), JSON HTTP API, and the distributed-sweep
//	                     coordinator (cell lease endpoints over
//	                     internal/shard, durable checkpoints)
//	internal/shard       cell lease table for distributed sweeps: bounded
//	                     TTL leases, heartbeats, straggler re-lease, and
//	                     first-wins duplicate resolution asserted
//	                     bit-identical
//	internal/obs         zero-dependency observability: atomic counters and
//	                     gauges, sharded lock-free histograms, Prometheus
//	                     text exposition, runtime/metrics health gauges,
//	                     and distributed tracing — spans with trace ids,
//	                     attributes and traceparent propagation in an
//	                     in-memory ring — 0 allocs/op on the record path
//	cmd/...              command-line tools; cmd/serve runs the HTTP
//	                     service (plus /metrics, /debug/trace and optional
//	                     pprof) and coordinates distributed sweeps;
//	                     cmd/sweep runs adaptive sweeps and threshold
//	                     searches; cmd/sweepworker pulls distributed-sweep
//	                     cell leases; cmd/traceview stitches coordinator
//	                     and worker trace dumps into cross-process
//	                     timelines; examples/... runnable examples
//
// docs/ARCHITECTURE.md draws the layer map behind this listing, states the
// determinism contract every layer preserves, and walks the two data flows
// worth internalizing first: a distributed sweep and a query-index hit.
//
// The experiment service (internal/service + cmd/serve) turns the one-shot
// drivers into a long-running system: jobs are submitted, tracked and
// cancelled over HTTP, results are rendered as JSON/CSV/Markdown, and —
// because every driver is a pure function of (experiment, seed, quick,
// model, mp) — repeated requests are served bit-identically from an LRU
// cache. See the README for endpoint documentation and curl examples.
//
// The root package holds the repository-level benchmarks (bench_test.go):
// one benchmark per experiment table/figure plus micro-benchmarks of the
// hot kernels. Run them with
//
//	go test -bench=. -benchmem .
package repro
