package repro

// Repository-level benchmarks: one per experiment (regenerating the
// corresponding table/figure at quick scale and reporting its headline
// metric via b.ReportMetric) plus micro-benchmarks of the kernels every
// experiment leans on.

import (
	"context"
	"math"
	"strconv"
	"testing"

	"repro/internal/assign"
	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/phonecall"
	"repro/internal/qindex"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// benchCfg is the per-iteration experiment configuration: quick scale,
// seed varied per iteration so the benchmark averages across instances.
func benchCfg(i int) experiments.Config {
	return experiments.Config{Seed: uint64(i) + 1, Quick: true}
}

// runExperiment drives one experiment per iteration and reports the
// number of table rows produced (a stand-in throughput metric; the real
// output is the table itself).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	rows := 0
	for i := 0; i < b.N; i++ {
		res := e.Run(benchCfg(i))
		for _, tb := range res.Tables {
			rows += len(tb.Rows)
		}
	}
	b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
}

func BenchmarkE1TemporalDiameterClique(b *testing.B) { runExperiment(b, "E1") }
func BenchmarkE2LifetimeScaling(b *testing.B)        { runExperiment(b, "E2") }
func BenchmarkE3ExpansionProcess(b *testing.B)       { runExperiment(b, "E3") }
func BenchmarkE4Spread(b *testing.B)                 { runExperiment(b, "E4") }
func BenchmarkE5StarReachability(b *testing.B)       { runExperiment(b, "E5") }
func BenchmarkE6StarPoR(b *testing.B)                { runExperiment(b, "E6") }
func BenchmarkE7GeneralReachability(b *testing.B)    { runExperiment(b, "E7") }
func BenchmarkE8PoRGeneral(b *testing.B)             { runExperiment(b, "E8") }
func BenchmarkE9GnpConnectivity(b *testing.B)        { runExperiment(b, "E9") }
func BenchmarkE10PhoneCall(b *testing.B)             { runExperiment(b, "E10") }
func BenchmarkE11MultiLabel(b *testing.B)            { runExperiment(b, "E11") }
func BenchmarkE12Distributions(b *testing.B)         { runExperiment(b, "E12") }
func BenchmarkE13Remark1(b *testing.B)               { runExperiment(b, "E13") }
func BenchmarkE14Windows(b *testing.B)               { runExperiment(b, "E14") }
func BenchmarkE15MarkovDiameter(b *testing.B)        { runExperiment(b, "E15") }
func BenchmarkE16TimeVarying(b *testing.B)           { runExperiment(b, "E16") }
func BenchmarkE17Geometric(b *testing.B)             { runExperiment(b, "E17") }

// --- kernel micro-benchmarks -------------------------------------------

// urtClique builds a directed normalized URT clique instance.
func urtClique(n int, seed uint64) *temporal.Network {
	g := graph.Clique(n, true)
	lab := assign.NormalizedURTN(g, rng.New(seed))
	return temporal.MustNew(g, n, lab)
}

// sparseGnp builds an undirected sparse G(n,p) instance with uniform
// labels — the Hartmann–Mézard-style sparse regime (np ≈ 8).
func sparseGnp(n int, seed uint64) *temporal.Network {
	r := rng.New(seed)
	g := graph.Gnp(n, 8/float64(n), false, r)
	lab := assign.Uniform(g, n, 4, r)
	return temporal.MustNew(g, n, lab)
}

func BenchmarkKernelEarliestArrival(b *testing.B) {
	run := func(name string, net *temporal.Network) {
		b.Run(name, func(b *testing.B) {
			n := net.Graph().N()
			arr := make([]int32, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.EarliestArrivalsInto(i%n, arr)
			}
			b.ReportMetric(float64(net.LabelCount()), "timeedges")
		})
	}
	for _, n := range []int{256, 1024} {
		run("clique-"+strconv.Itoa(n), urtClique(n, 1))
	}
	run("gnp-4096-sparse", sparseGnp(4096, 1))
}

// BenchmarkKernelEarliestArrivalLinear measures the pre-engine O(M) scan
// (kept as the differential oracle) on the same instances, so the frontier
// speedup is visible within one run.
func BenchmarkKernelEarliestArrivalLinear(b *testing.B) {
	run := func(name string, net *temporal.Network) {
		b.Run(name, func(b *testing.B) {
			n := net.Graph().N()
			arr := make([]int32, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.EarliestArrivalsLinearInto(i%n, arr)
			}
		})
	}
	run("clique-1024", urtClique(1024, 1))
	run("gnp-4096-sparse", sparseGnp(4096, 1))
}

func BenchmarkKernelTemporalDiameterExact(b *testing.B) {
	net := urtClique(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temporal.Diameter(net)
	}
}

func BenchmarkKernelTreach(b *testing.B) {
	g := graph.Grid(12, 12)
	lab := assign.Uniform(g, g.N(), 8, rng.New(1))
	net := temporal.MustNew(g, g.N(), lab)
	scratch := temporal.NewTreachScratch(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temporal.SatisfiesTreachSerial(net, scratch)
	}
}

// BenchmarkKernelTreachClique is the dense always-satisfied regime: no
// early exit, every source sweeps, so the bit-parallel kernel's 64-way
// sharing carries the whole n² work.
func BenchmarkKernelTreachClique(b *testing.B) {
	net := urtClique(256, 1)
	scratch := temporal.NewTreachScratch(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temporal.SatisfiesTreachSerial(net, scratch)
	}
}

// BenchmarkKernelMultiSourceReach measures the bit-parallel word kernel
// answering 64 sources in one pass.
func BenchmarkKernelMultiSourceReach(b *testing.B) {
	net := urtClique(1024, 1)
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temporal.ReachableSets(net, sources)
	}
}

// BenchmarkKernelArrivalRegimes races the two single-source kernels across
// the reachability regimes that drive the all-pairs kernel portfolio: the
// frontier kernel wins whenever reachability is partial (the linear scan
// cannot exit early), the linear kernel wins on fully-reachable
// label-dense instances (its early exit stops at the completion prefix).
func BenchmarkKernelArrivalRegimes(b *testing.B) {
	run := func(name string, net *temporal.Network) {
		n := net.Graph().N()
		arr := make([]int32, n)
		b.Run(name+"/frontier", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.EarliestArrivalsInto(i%n, arr)
			}
		})
		b.Run(name+"/linear", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.EarliestArrivalsLinearInto(i%n, arr)
			}
		})
	}
	r := rng.New(1)
	g := graph.Gnp(4096, 0.5/4096, true, r)
	run("subcritical-gnp-4096", temporal.MustNew(g, 4096, assign.Uniform(g, 4096, 4, r)))
	g = graph.Gnp(4096, 3.0/4096, true, r)
	run("near-threshold-gnp-4096", temporal.MustNew(g, 4096, assign.Uniform(g, 4096, 2, r)))
	run("clique-256", urtClique(256, 1))
}

func BenchmarkKernelExpansion(b *testing.B) {
	net := urtClique(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Expansion(net, i%1024, (i+511)%1024, core.ExpansionConfig{})
	}
}

func BenchmarkKernelSpread(b *testing.B) {
	net := urtClique(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Spread(net, i%1024)
	}
}

func BenchmarkKernelUniformAssignment(b *testing.B) {
	g := graph.Clique(1024, true)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.NormalizedURTN(g, r)
	}
}

func BenchmarkKernelNetworkConstruction(b *testing.B) {
	g := graph.Clique(512, true)
	lab := assign.NormalizedURTN(g, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temporal.MustNew(g, 512, lab)
	}
}

func BenchmarkKernelPhonecallPush(b *testing.B) {
	g := graph.Clique(1024, false)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phonecall.Push(g, i%1024, 0, r)
	}
}

func BenchmarkKernelGnpSparse(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graph.Gnp(4096, 0.002, false, r)
	}
}

// --- batched trial engine (Relabel) micro-benchmarks --------------------
//
// BenchmarkKernelRelabel measures one batched Monte-Carlo trial on a fixed
// substrate: in-place Resample into a reused labeling, Relabel (lazy index
// rebuild), and a Treach check against a precomputed static-reachability
// cache. BenchmarkKernelRelabelRebuild is the same trial through the
// rebuild oracle the engine replaced — a fresh Assign + MustNew + serial
// Treach per trial. Both produce bit-identical answers (pinned by the
// differential tests); the delta is the batched engine's win, and the
// relabel side must stay at 0 allocs/op (the CI benchdiff gate fails on
// any alloc regression).

// relabelBenchCases spans the resampling model families on the clique and
// sparse-G(n,p) substrates the sweeps spend their trials on.
func relabelBenchCases(b *testing.B) []struct {
	name string
	m    avail.Model
	g    *graph.Graph
} {
	b.Helper()
	mk := func(name string, p avail.Params) avail.Model {
		m, err := avail.Build(name, p)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	return []struct {
		name string
		m    avail.Model
		g    *graph.Graph
	}{
		{"uniform-r2-clique-128", mk("uniform", avail.Params{Lifetime: 128, R: 2}), graph.Clique(128, false)},
		{"markov-clique-128", mk("markov", avail.Params{Lifetime: 128, P: map[string]float64{"pi": 0.05, "runlen": 4}}), graph.Clique(128, false)},
		{"pt-ramp-clique-128", mk("pt-ramp", avail.Params{Lifetime: 128}), graph.Clique(128, false)},
		{"uniform-r4-gnp-1024", mk("uniform", avail.Params{Lifetime: 1024, R: 4}), graph.Gnp(1024, 8.0/1024, false, rng.New(3))},
	}
}

func BenchmarkKernelRelabel(b *testing.B) {
	for _, tc := range relabelBenchCases(b) {
		b.Run(tc.name, func(b *testing.B) {
			rs := tc.m.(avail.Resampler)
			sr := temporal.NewStaticReach(tc.g)
			net := temporal.MustNew(tc.g, tc.m.Lifetime(), temporal.Labeling{Off: make([]int32, tc.g.M()+1)})
			var lab temporal.Labeling
			stream := rng.New(7)
			// Warm the buffers so the loop measures the steady state.
			rs.Resample(tc.g, &lab, stream)
			if err := net.Relabel(lab); err != nil {
				b.Fatal(err)
			}
			temporal.SatisfiesTreachStatic(net, sr, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs.Resample(tc.g, &lab, stream)
				if err := net.Relabel(lab); err != nil {
					b.Fatal(err)
				}
				temporal.SatisfiesTreachStatic(net, sr, nil)
			}
			b.ReportMetric(float64(net.LabelCount()), "timeedges")
		})
	}
}

func BenchmarkKernelRelabelRebuild(b *testing.B) {
	for _, tc := range relabelBenchCases(b) {
		b.Run(tc.name, func(b *testing.B) {
			stream := rng.New(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net := temporal.MustNew(tc.g, tc.m.Lifetime(), tc.m.Assign(tc.g, stream))
				temporal.SatisfiesTreachSerial(net, nil)
			}
		})
	}
}

// --- sweep-engine micro-benchmarks --------------------------------------
//
// BenchmarkSweep* tracks the adaptive estimation subsystem in
// BENCH_kernels.json alongside the kernels (make bench matches
// BenchmarkKernel|BenchmarkSweep). The overhead/baseline pair isolates
// what the CI-driven loop costs on top of a fixed-trial run of the same
// trial budget.

// cheapObs is a near-free Bernoulli observable: the benchmark then
// measures harness machinery, not the trial body.
func cheapObs(trial int, r *rng.Stream) float64 {
	if r.Bernoulli(0.5) {
		return 1
	}
	return 0
}

// BenchmarkSweepAdaptiveOverhead runs the adaptive loop to its trial cap
// (the precision is unmeetable), so every iteration spends exactly 512
// trials plus the batching, folding and interval logic around them.
func BenchmarkSweepAdaptiveOverhead(b *testing.B) {
	b.ReportAllocs()
	trials := 0
	for i := 0; i < b.N; i++ {
		a := sweep.Adaptive{
			Seed: uint64(i) + 1,
			Kind: sweep.Proportion,
			Prec: sweep.Precision{Abs: 1e-9, MaxTrials: 512, Batch: 32},
		}
		est, err := a.Estimate(context.Background(), cheapObs)
		if err != nil {
			b.Fatal(err)
		}
		trials += est.N
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/op")
}

// BenchmarkSweepFixedBaseline is the same 512-trial budget through the
// plain Monte-Carlo harness: the delta against AdaptiveOverhead is the
// adaptive machinery's cost.
func BenchmarkSweepFixedBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Runner{Trials: 512, Seed: uint64(i) + 1}.Run(func(trial int, r *rng.Stream) sim.Metrics {
			return sim.Metrics{"x": cheapObs(trial, r)}
		})
	}
}

// BenchmarkSweepAdaptiveEarlyStop converges at ~±0.05 instead of running
// to the cap — the win adaptive stopping buys over a conservative fixed
// trial count.
func BenchmarkSweepAdaptiveEarlyStop(b *testing.B) {
	b.ReportAllocs()
	trials := 0
	for i := 0; i < b.N; i++ {
		a := sweep.Adaptive{
			Seed: uint64(i) + 1,
			Kind: sweep.Proportion,
			Prec: sweep.Precision{Abs: 0.05, MaxTrials: 4096, Batch: 32},
		}
		est, err := a.Estimate(context.Background(), cheapObs)
		if err != nil {
			b.Fatal(err)
		}
		trials += est.N
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/op")
}

// BenchmarkSweepThresholdBisect locates a crossing of a synthetic steep
// response with adaptive estimates at every probe — the full threshold
// stack end to end.
func BenchmarkSweepThresholdBisect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		eval := func(x float64) (float64, error) {
			a := sweep.Adaptive{
				Seed: seed,
				Kind: sweep.Proportion,
				Prec: sweep.Precision{Abs: 0.1, MaxTrials: 256, Batch: 32},
			}
			est, err := a.Estimate(context.Background(), func(trial int, r *rng.Stream) float64 {
				p := 1 / (1 + math.Exp(-(x-0.4)/0.05))
				if r.Bernoulli(p) {
					return 1
				}
				return 0
			})
			return est.Point, err
		}
		cr, err := sweep.Threshold{Target: 0.5, Lo: 0, Hi: 1, Tol: 0.02}.Find(eval)
		if err != nil || !cr.Converged {
			b.Fatalf("bisect failed: %v %+v", err, cr)
		}
	}
}

// --- batched vs rebuild sweep benchmarks --------------------------------
//
// BenchmarkSweepBatched*/BenchmarkSweepRebuild* run the same adaptive cell
// — an i.i.d.-uniform-labeled treach estimate driven to a fixed 256-trial
// budget — through the two execution paths: sim.BatchRunner (per-worker
// substrate+index, labels resampled in place, static reach cached) versus
// the rebuild oracle (avail.Network per trial). Estimates are
// bit-identical; the trials/sec ratio is the batched engine's headline
// number (≥3× on the clique, the sparse-gnp cell is bounded by the
// temporal word scan both paths share).

func sweepCellBench(b *testing.B, m avail.Model, g *graph.Graph, batched bool) {
	b.Helper()
	prec := sweep.Precision{Abs: 1e-9, MaxTrials: 256, Batch: 64}
	treach := func(trial int, net *temporal.Network, r *rng.Stream) float64 {
		if temporal.SatisfiesTreachSerial(net, nil) {
			return 1
		}
		return 0
	}
	// The substrate StaticReach shortcut mirrors SweepTarget.Source: it
	// applies only to fixed-substrate models — scenario trials run on a
	// per-trial support graph, so they answer the serial treach question.
	var sr *temporal.StaticReach
	if batched && !avail.IsScenario(m) {
		sr = temporal.NewStaticReach(g)
	}
	trials := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		a := sweep.Adaptive{Seed: seed, Kind: sweep.Proportion, Prec: prec}
		var est sweep.Estimate
		var err error
		if batched {
			br := sim.BatchRunner{Model: m, Substrate: g, Seed: seed}
			est, err = a.EstimateSource(context.Background(), func(ctx context.Context, start, count int) ([]float64, error) {
				return br.ObserveFrom(ctx, start, count, func(trial int, net *temporal.Network, r *rng.Stream) float64 {
					if sr == nil {
						return treach(trial, net, r)
					}
					if temporal.SatisfiesTreachStatic(net, sr, nil) {
						return 1
					}
					return 0
				})
			})
		} else {
			runner := sim.Runner{Seed: seed}
			est, err = a.EstimateSource(context.Background(), func(ctx context.Context, start, count int) ([]float64, error) {
				return runner.ScalarsFromContext(ctx, start, count, func(trial int, r *rng.Stream) float64 {
					return treach(trial, avail.Network(m, g, r), r)
				})
			})
		}
		if err != nil {
			b.Fatal(err)
		}
		trials += est.N
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/op")
}

func sweepBenchClique(b *testing.B) (avail.Model, *graph.Graph) {
	b.Helper()
	m, err := avail.Build("uniform", avail.Params{Lifetime: 96, R: 4})
	if err != nil {
		b.Fatal(err)
	}
	return m, graph.Clique(96, false)
}

func sweepBenchGnp(b *testing.B) (avail.Model, *graph.Graph) {
	b.Helper()
	m, err := avail.Build("uniform", avail.Params{Lifetime: 256, R: 8})
	if err != nil {
		b.Fatal(err)
	}
	return m, graph.Gnp(256, 8.0/256, false, rng.New(3))
}

func BenchmarkSweepRebuildIIDClique(b *testing.B) {
	m, g := sweepBenchClique(b)
	sweepCellBench(b, m, g, false)
}

func BenchmarkSweepBatchedIIDClique(b *testing.B) {
	m, g := sweepBenchClique(b)
	sweepCellBench(b, m, g, true)
}

func BenchmarkSweepRebuildIIDGnp(b *testing.B) {
	m, g := sweepBenchGnp(b)
	sweepCellBench(b, m, g, false)
}

func BenchmarkSweepBatchedIIDGnp(b *testing.B) {
	m, g := sweepBenchGnp(b)
	sweepCellBench(b, m, g, true)
}

// sweepGeomCellBench is the mobility cell: the E17 full-size configuration
// (n = 100 torus walkers, lifetime 64, auto radius) driven to the same
// fixed 256-trial budget. The rebuild arm draws every trial's support
// graph, labels and indexes from scratch (avail.Network); the batched arm
// runs the incremental engine — persistent grid buckets in the scenario
// state, then ScenarioState + RelabelEdges topology patches on a
// worker-owned network. The observable is a single-source earliest-arrival
// sweep, cheap relative to instance construction, so the ratio gauges the
// two engines rather than a measurement kernel both arms share.
func sweepGeomCellBench(b *testing.B, batched bool) {
	b.Helper()
	m, err := avail.Build("geometric", avail.Params{Lifetime: 64})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.Clique(100, false) // scenario models use only the vertex count
	prec := sweep.Precision{Abs: 1e-9, MaxTrials: 256, Batch: 64}
	reach := func(net *temporal.Network, arr []int32) float64 {
		if net.EarliestArrivalsInto(0, arr) == len(arr) {
			return 1
		}
		return 0
	}
	trials := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		a := sweep.Adaptive{Seed: seed, Kind: sweep.Proportion, Prec: prec}
		var est sweep.Estimate
		var err error
		if batched {
			br := sim.BatchRunner{Model: m, Substrate: g, Seed: seed}
			est, err = a.EstimateSource(context.Background(), func(ctx context.Context, start, count int) ([]float64, error) {
				return br.ObserveFrom(ctx, start, count, func(trial int, net *temporal.Network, r *rng.Stream) float64 {
					return reach(net, make([]int32, g.N()))
				})
			})
		} else {
			runner := sim.Runner{Seed: seed}
			est, err = a.EstimateSource(context.Background(), func(ctx context.Context, start, count int) ([]float64, error) {
				return runner.ScalarsFromContext(ctx, start, count, func(trial int, r *rng.Stream) float64 {
					return reach(avail.Network(m, g, r), make([]int32, g.N()))
				})
			})
		}
		if err != nil {
			b.Fatal(err)
		}
		trials += est.N
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/op")
}

func BenchmarkSweepRebuildGeometric(b *testing.B) { sweepGeomCellBench(b, false) }
func BenchmarkSweepBatchedGeometric(b *testing.B) { sweepGeomCellBench(b, true) }

// --- observability micro-benchmarks -------------------------------------
//
// BenchmarkObs* pins the record path of the metrics layer
// (internal/obs): a counter bump, a histogram observation and a span
// must stay a handful of nanoseconds at 0 allocs/op, because the
// instrumented layers (sim, temporal, service) call them from code whose
// own benchmarks are alloc-gated. Tracked in BENCH_kernels.json and
// gated by cmd/benchdiff alongside the Kernel* family.

func BenchmarkObsCounterInc(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("bench_counter_par_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	r := obs.NewRegistry()
	h := r.Histogram("bench_hist_ns", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

// BenchmarkObsHistogramObserveParallel is the contended case the shard
// layout exists for: every worker hammers one histogram.
func BenchmarkObsHistogramObserveParallel(b *testing.B) {
	r := obs.NewRegistry()
	h := r.Histogram("bench_hist_par_ns", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			h.Observe(i)
			i++
		}
	})
}

// BenchmarkObsVecWith measures the labeled-series lookup — the reason
// instrumented code resolves handles once at init instead of calling
// With per event.
func BenchmarkObsVecWith(b *testing.B) {
	r := obs.NewRegistry()
	vec := r.CounterVec("bench_vec_total", "bench", "k")
	vec.With("v").Inc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.With("v").Inc()
	}
}

func BenchmarkObsSpan(b *testing.B) {
	tr := obs.NewTracer(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Start("bench.op").End()
	}
}

// BenchmarkObsSpanAttrs is the traced-request record path as the service
// middleware and sweepworker actually use it: a span plus string and int
// attributes and the error check, still 0 allocs/op — attributes live in
// a fixed inline array, never a map.
func BenchmarkObsSpanAttrs(b *testing.B) {
	tr := obs.NewTracer(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench.op")
		sp.SetAttr("worker", "w1")
		sp.SetAttrInt("cell", int64(i))
		sp.End()
	}
}

// BenchmarkObsInjectExtract pins the trace-context hop a worker pays on
// every POST: render the traceparent into a reused buffer and parse it
// back, 0 allocs/op.
func BenchmarkObsInjectExtract(b *testing.B) {
	sc := obs.SpanContext{Trace: obs.NewTraceID(), Span: 42}
	buf := make([]byte, 0, obs.TraceparentLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sc.AppendTraceparent(buf[:0])
		got, ok := obs.ParseTraceparentBytes(buf)
		if !ok || got != sc {
			b.Fatal("traceparent round trip failed")
		}
	}
}

// BenchmarkSweepE18CellQuick is one real sweep cell at E18 quick scale: a
// markov-labeled directed clique estimated to ±0.12 — the unit the
// connectivity-threshold experiment spends.
func BenchmarkSweepE18CellQuick(b *testing.B) {
	g := graph.Clique(32, true)
	m, err := avail.NewMarkov(32, 0.05, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := sweep.Adaptive{
			Seed: uint64(i) + 1,
			Kind: sweep.Proportion,
			Prec: sweep.Precision{Abs: 0.12, MinTrials: 8, MaxTrials: 96, Batch: 16},
		}
		_, err := a.Estimate(context.Background(), func(trial int, r *rng.Stream) float64 {
			net := avail.Network(m, g, r)
			if temporal.SatisfiesTreachSerial(net, nil) {
				return 1
			}
			return 0
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// queryBenchNet is the serving benchmark fixture: the sparse G(n,p)
// regime at n = 1024, the scale the CI query-smoke job boots.
func queryBenchNet(b *testing.B) *temporal.Network {
	b.Helper()
	return sparseGnp(1024, 2014)
}

// BenchmarkQueryIndexHitFull is the steady-state serving hot path: a
// point query answered from the precomputed full table. The contract is
// ≤ 1µs and 0 allocs/op.
func BenchmarkQueryIndexHitFull(b *testing.B) {
	ix := qindex.New(queryBenchNet(b), qindex.Options{Mode: qindex.ModeFull})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Arrival(i&1023, (i*7)&1023, 1)
	}
}

// BenchmarkQueryIndexHitLRU hits resident LRU rows: the map + list touch
// the full table avoids.
func BenchmarkQueryIndexHitLRU(b *testing.B) {
	ix := qindex.New(queryBenchNet(b), qindex.Options{Mode: qindex.ModeLRU})
	for s := 0; s < 64; s++ {
		ix.Arrival(s, 1, 1) // warm 64 rows
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Arrival(i&63, (i*7)&1023, 1)
	}
}

// BenchmarkQueryMissCold is the uncached path: every query runs a pooled
// frontier compute (ModeOff keeps nothing resident).
func BenchmarkQueryMissCold(b *testing.B) {
	ix := qindex.New(queryBenchNet(b), qindex.Options{Mode: qindex.ModeOff})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Arrival(i&1023, (i*7)&1023, 1)
	}
}

// BenchmarkQueryFullBuild measures the 64-way batched full-table
// precompute the serve process pays once at startup.
func BenchmarkQueryFullBuild(b *testing.B) {
	net := queryBenchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := qindex.New(net, qindex.Options{Mode: qindex.ModeFull})
		if ix.N() != 1024 {
			b.Fatal("bad build")
		}
	}
}
