// Command por computes the Price of Randomness for a graph family: the
// estimated random-label threshold r(n), deterministic OPT bounds, the
// resulting PoR interval, and Theorem 8's upper bound.
//
// Usage:
//
//	por -family star -n 64
//	por -family grid -n 36 -trials 50
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		family = flag.String("family", "star", "star, path, cycle, grid, hypercube, bintree")
		n      = flag.Int("n", 64, "requested size")
		trials = flag.Int("trials", 40, "trials per threshold probe")
		seed   = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()

	var g *graph.Graph
	switch *family {
	case "star":
		g = graph.Star(*n)
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "grid":
		g = graph.Grid((*n+3)/4, 4)
	case "hypercube":
		g = graph.Hypercube(int(math.Floor(math.Log2(float64(*n)))))
	case "bintree":
		g = graph.BinaryTree(*n)
	default:
		fmt.Fprintf(os.Stderr, "por: unknown family %q\n", *family)
		os.Exit(2)
	}
	nv, m := g.N(), g.M()
	diam, _ := graph.Diameter(g)

	fmt.Printf("%s: n=%d m=%d d=%d\n\n", *family, nv, m, diam)
	rhat, ok := core.EstimateR(g, nv, core.WHPTarget(nv), *trials, *seed, 8*core.TheoremSevenR(nv, diam))
	marker := ""
	if !ok {
		marker = "+"
	}
	fmt.Printf("estimated r(n)          : %d%s uniform labels/edge (target 1-1/n)\n", rhat, marker)

	optLo, optHi := assign.OptBounds(g)
	fmt.Printf("deterministic OPT       : in [%d, %d]", optLo, optHi)
	if optLo == optHi {
		fmt.Printf(" (exact)")
	}
	fmt.Println()
	fmt.Printf("Price of Randomness     : in [%.2f, %.2f]  (m·r/OPT)\n",
		core.PoR(m, rhat, optHi), core.PoR(m, rhat, optLo))
	fmt.Printf("Theorem 8 upper bound   : %.2f  ((2·d·ln n)·m/(n-1))\n",
		core.TheoremEightPoRBound(nv, m, diam))
	fmt.Printf("r(n)/log₂n              : %.2f  (Theorem 6: Θ(log n) already for diameter 2)\n",
		float64(rhat)/math.Log2(float64(nv)))
}
