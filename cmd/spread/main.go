// Command spread floods a message through a uniform random temporal clique
// from one source (§3.5's protocol) and prints the dissemination timeline,
// with the random phone-call model's PUSH and PUSH-PULL as baselines.
//
// Usage:
//
//	spread -n 512
//	spread -n 512 -source 7 -seed 3
//	spread -n 256 -lifetime 1024   # slower spreading: Theorem 5 regime
//	spread -n 8192 -summary        # coverage only, skips the O(n²) replay
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/phonecall"
	"repro/internal/rng"
	"repro/internal/temporal"
)

func main() {
	var (
		n        = flag.Int("n", 256, "clique size")
		lifetime = flag.Int("lifetime", 0, "lifetime (default n)")
		source   = flag.Int("source", 0, "source vertex")
		seed     = flag.Uint64("seed", 1, "instance seed")
		summary  = flag.Bool("summary", false, "coverage summary only: answers from the earliest-arrival engine without the event-by-event replay (no timeline or transmission counts)")
	)
	flag.Parse()
	a := *lifetime
	if a == 0 {
		a = *n
	}
	if *source < 0 || *source >= *n {
		fmt.Fprintln(os.Stderr, "spread: source out of range")
		os.Exit(2)
	}

	g := graph.Clique(*n, true)
	lab := assign.Uniform(g, a, 1, rng.New(*seed))
	net := temporal.MustNew(g, a, lab)

	if *summary {
		_, informed, completion := core.SpreadReach(net, *source)
		fmt.Printf("flooding the directed URT clique: n=%d lifetime=%d source=%d\n\n", *n, a, *source)
		if informed == *n {
			fmt.Printf("all %d vertices informed at t=%d  (ln n = %.1f — §3.5 predicts O(log n))\n",
				*n, completion, math.Log(float64(*n)))
		} else {
			fmt.Printf("only %d/%d informed within the lifetime (last at t=%d)\n", informed, *n, completion)
		}
		return
	}

	res := core.Spread(net, *source)

	fmt.Printf("flooding the directed URT clique: n=%d lifetime=%d source=%d\n\n", *n, a, *source)
	fmt.Println("  time  informed  coverage")
	for _, pt := range res.Timeline {
		frac := float64(pt.Informed) / float64(*n)
		bar := strings.Repeat("#", int(frac*40))
		fmt.Printf("  %4d  %8d  %-40s %5.1f%%\n", pt.Time, pt.Informed, bar, 100*frac)
	}
	fmt.Println()
	if res.All {
		fmt.Printf("all %d vertices informed at t=%d  (ln n = %.1f — §3.5 predicts O(log n))\n",
			*n, res.CompletionTime, math.Log(float64(*n)))
	} else {
		fmt.Printf("only %d/%d informed within the lifetime\n", res.Informed, *n)
	}
	fmt.Printf("protocol transmissions: %d total, %d useful (n² = %d)\n\n",
		res.Transmissions, res.UsefulTransmissions, (*n)*(*n))

	gu := graph.Clique(*n, false)
	push := phonecall.Push(gu, *source, 0, rng.New(*seed+1))
	pp := phonecall.PushPull(gu, *source, 0, rng.New(*seed+2))
	fmt.Printf("phone-call baselines (§1.1): push %d rounds / %d tx; push-pull %d rounds / %d tx\n",
		push.Rounds, push.Transmissions, pp.Rounds, pp.Transmissions)
}
