// Command tdiam measures the temporal diameter of one uniform random
// temporal clique instance — the quantity Theorems 4 and 5 bound.
//
// Usage:
//
//	tdiam -n 512                 # normalized lifetime a = n
//	tdiam -n 256 -lifetime 2048  # Theorem 5 regime a >> n
//	tdiam -n 512 -undirected
//	tdiam -n 512 -trials 20      # Monte-Carlo mean over instances
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/temporal"
)

func main() {
	var (
		n          = flag.Int("n", 256, "number of vertices")
		lifetime   = flag.Int("lifetime", 0, "lifetime a (default n, the normalized case)")
		trials     = flag.Int("trials", 10, "independent instances to average")
		seed       = flag.Uint64("seed", 1, "base seed")
		undirected = flag.Bool("undirected", false, "use the undirected clique")
	)
	flag.Parse()
	if *n < 2 {
		fmt.Fprintln(os.Stderr, "tdiam: need n >= 2")
		os.Exit(2)
	}
	a := *lifetime
	if a == 0 {
		a = *n
	}

	g := graph.Clique(*n, !*undirected)
	fmt.Printf("uniform random temporal clique: n=%d, lifetime=%d, directed=%v, %d trials\n\n",
		*n, a, !*undirected, *trials)

	var td, mean stats.Sample
	reachFails := 0
	for i := 0; i < *trials; i++ {
		r := rng.NewStream(*seed, uint64(i))
		lab := assign.Uniform(g, a, 1, r)
		net := temporal.MustNew(g, a, lab)
		res := temporal.Diameter(net)
		if !res.AllReachable {
			reachFails++
			continue
		}
		td.Add(float64(res.Max))
		mean.Add(res.MeanFinite)
	}

	lnN := math.Log(float64(*n))
	fmt.Printf("temporal diameter : mean %.2f ± %.2f (95%% CI), min %.0f, max %.0f\n",
		td.Mean(), td.CI95(), td.Min(), td.Max())
	fmt.Printf("mean temporal dist: %.2f\n", mean.Mean())
	fmt.Printf("TD / ln n         : %.3f   (Theorem 4: ≤ γ with γ > 1 for a = n)\n", td.Mean()/lnN)
	if a > *n {
		scale := core.LifetimeLowerBound(*n, a)
		fmt.Printf("TD / ((a/n)·ln n) : %.3f   (Theorem 5: bounded below by a constant)\n", td.Mean()/scale)
	}
	if reachFails > 0 {
		fmt.Printf("instances with unreachable pairs: %d/%d (excluded from means)\n", reachFails, *trials)
	}
}
