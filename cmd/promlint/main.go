// Command promlint validates Prometheus text-exposition input from stdin
// (obs.Lint): every line must be a well-formed comment or sample and
// every histogram family complete. It prints the sample count on success
// and exits nonzero on the first malformed line — the parseability check
// the CI smoke job pipes /metrics scrapes through:
//
//	curl -s localhost:8080/metrics | go run ./cmd/promlint
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	n, err := obs.Lint(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("promlint: %d samples ok\n", n)
}
