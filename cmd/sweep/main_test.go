package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
)

func TestParseGrid(t *testing.T) {
	axes, err := parseGrid("n=32,64; pi=0.1:0.3:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(axes) != 2 || axes[0].Name != "n" || axes[1].Name != "pi" {
		t.Fatalf("axes = %+v", axes)
	}
	if len(axes[0].Values) != 2 || axes[0].Values[1] != 64 {
		t.Fatalf("n axis = %v", axes[0].Values)
	}
	want := []float64{0.1, 0.2, 0.3}
	for i, v := range want {
		if math.Abs(axes[1].Values[i]-v) > 1e-12 {
			t.Fatalf("pi axis = %v, want %v", axes[1].Values, want)
		}
	}
	if axes, err := parseGrid(""); err != nil || axes != nil {
		t.Fatalf("empty grid: %v %v", axes, err)
	}
	for _, bad := range []string{"novalue", "x=", "x=a,b", "x=1:2", "x=1:2:0"} {
		if _, err := parseGrid(bad); err == nil {
			t.Errorf("grid %q accepted", bad)
		}
	}
}

func TestParsePrecision(t *testing.T) {
	p, err := parsePrecision("abs=0.03,rel=0.1,conf=0.9,min=4,max=100,batch=10")
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.Precision{Abs: 0.03, Rel: 0.1, Confidence: 0.9, MinTrials: 4, MaxTrials: 100, Batch: 10}
	if p != want {
		t.Fatalf("precision = %+v, want %+v", p, want)
	}
	for _, bad := range []string{"abs", "abs=x", "frobs=1", "conf=2"} {
		if _, err := parsePrecision(bad); err == nil {
			t.Errorf("precision %q accepted", bad)
		}
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange("0.01 : 0.5")
	if err != nil || lo != 0.01 || hi != 0.5 {
		t.Fatalf("parseRange: %v %v %v", lo, hi, err)
	}
	for _, bad := range []string{"1", "a:2", "1:b"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("range %q accepted", bad)
		}
	}
}

func baseCfg() cfg {
	return cfg{
		model: "uniform", graph: "dclique", metric: "treach",
		seed: 7, format: "json", target: -1, tol: 0.01, maxEvals: 16,
		prec: "abs=0.2,min=4,max=32,batch=8",
	}
}

func TestRunGridModeWithResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	c := baseCfg()
	c.grid = "n=8,12;lifetime=4,16"
	c.resume = ck
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	// The checkpoint is complete; a rerun resumes every cell from it.
	f, err := os.Open(ck)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sweep.DecodeCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Cells) != 4 {
		t.Fatalf("checkpoint has %d cells, want 4", len(cp.Cells))
	}
	c.format = "table"
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	// A spec change must reject the stale checkpoint instead of mixing.
	c.seed++
	if err := run(c); err == nil {
		t.Fatal("stale checkpoint accepted after spec change")
	}
}

func TestRunThresholdMode(t *testing.T) {
	c := baseCfg()
	c.model = "markov"
	c.grid = "n=12"
	c.target = 0.5
	c.knob = "pi"
	// Keep the bracket inside markov feasibility: pi=0.5 at the default
	// runlen=4 is the largest alpha ≤ 1 corner.
	c.bracket = "0.01:0.5"
	c.tol = 0.05
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	mutations := map[string]func(*cfg){
		"missing model":  func(c *cfg) { c.model = "" },
		"unknown model":  func(c *cfg) { c.model = "nope" },
		"unknown metric": func(c *cfg) { c.metric = "latency" },
		"unknown axis":   func(c *cfg) { c.grid = "warp=1,2" },
		"no grid":        func(c *cfg) { c.grid = "" },
		"bad precision":  func(c *cfg) { c.prec = "conf=7" },
		"bad mp":         func(c *cfg) { c.mp = "pi=oops" },
	}
	for name, mutate := range mutations {
		c := baseCfg()
		c.grid = "n=8"
		mutate(&c)
		if err := run(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Threshold-mode specific failures.
	c := baseCfg()
	c.grid = "n=8"
	c.target = 0.5
	if err := run(c); err == nil {
		t.Error("threshold mode without -knob accepted")
	}
	c.knob = "warp"
	c.bracket = "0:1"
	if err := run(c); err == nil {
		t.Error("unknown threshold knob accepted")
	}
	c.knob = "pi" // not a knob of uniform
	if err := run(c); err == nil {
		t.Error("knob foreign to the model accepted")
	}
	// -resume is a grid-mode feature; threshold mode must reject it
	// rather than silently never checkpoint.
	c = baseCfg()
	c.model = "markov"
	c.grid = "n=8"
	c.target = 0.5
	c.knob = "pi"
	c.bracket = "0.01:0.5"
	c.resume = "t.ckpt"
	if err := run(c); err == nil {
		t.Error("threshold mode with -resume accepted")
	}
}
