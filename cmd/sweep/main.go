// Command sweep runs adaptive parameter-grid sweeps and threshold
// searches over the availability models (see internal/sweep): every cell
// is a CI-driven Monte-Carlo estimate that stops at a requested precision,
// and grid runs checkpoint to disk so an interrupted sweep resumes without
// rerunning completed cells.
//
// Usage:
//
//	sweep -model markov -grid "n=64,128;pi=0.02:0.3:8" -metric treach
//	sweep -model uniform -grid "n=64;lifetime=8,16,32,64" -metric meandelta
//	sweep -model markov -mp runlen=4 -grid "n=96" \
//	      -target 0.5 -knob pi -bracket 0.01:0.5 -tol 0.005
//	sweep -model geometric -grid "n=128" -target 0.5 -knob radius \
//	      -bracket 0.05:0.5 -tol 0.01 -precision "abs=0.03,max=2000"
//	sweep -model markov -grid "n=64,96,128;pi=0.05:0.25:9" \
//	      -resume sweep.ckpt.json     # Ctrl-C, then rerun to resume
//
// Grid axes are "name=v1,v2,…" or "name=lo:hi:steps", separated by ";".
// Axis names: "n" (substrate size), "lifetime" (label range, default n),
// or any knob of the chosen model. -precision takes
// "abs=…,rel=…,conf=…,min=…,max=…,batch=…" (see sweep.Precision).
//
// With -target the command bisects -knob over -bracket to locate where
// the metric crosses the target, once per cell of the remaining grid
// axes; without it the whole grid is estimated. Results are a rendered
// table (default) or JSON (-format json).
//
// Determinism: output depends only on the spec and -seed — never on
// -workers or on where a resumed run was interrupted. -metrics-dump
// writes the process metrics (Prometheus text, internal/obs) to stderr
// when the run ends; it never affects results.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/avail"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/table"
)

func main() {
	var (
		model    = flag.String("model", "", "availability model (required; see -list-models of cmd/gen)")
		mp       = flag.String("mp", "", "base model-parameter overrides, name=value[,name=value…]")
		graphFam = flag.String("graph", "dclique", "substrate family (graph.Family)")
		lifetime = flag.Int("lifetime", 0, "label range; 0 means lifetime = n")
		metric   = flag.String("metric", "treach", "response metric: treach, reach or meandelta")
		gridSpec = flag.String("grid", "", "grid axes: name=v1,v2,… or name=lo:hi:steps, ';'-separated")
		precSpec = flag.String("precision", "", "stopping rule: abs=…,rel=…,conf=…,min=…,max=…,batch=…")
		seed     = flag.Uint64("seed", 2014, "base seed; cell c runs under sweep.CellSeed(seed, c)")
		workers  = flag.Int("workers", 0, "trial parallelism; 0 means GOMAXPROCS (results identical)")
		resume   = flag.String("resume", "", "checkpoint file: loaded when present, saved after every cell")
		format   = flag.String("format", "table", "output format: table or json")

		target     = flag.Float64("target", -1, "threshold mode: metric level to locate (e.g. 0.5)")
		knob       = flag.String("knob", "", "threshold mode: knob to bisect (a model knob, n or lifetime)")
		bracket    = flag.String("bracket", "", "threshold mode: initial knob bracket lo:hi")
		tol        = flag.Float64("tol", 0.01, "threshold mode: knob tolerance")
		maxEvals   = flag.Int("max-evals", 32, "threshold mode: response evaluation cap")
		expand     = flag.Int("expand", 0, "threshold mode: allowed bracket expansions")
		decreasing = flag.Bool("decreasing", false, "threshold mode: metric decreases in the knob")

		metricsDump = flag.Bool("metrics-dump", false, "dump process metrics (Prometheus text) to stderr at exit")
	)
	flag.Parse()
	err := run(cfg{
		model: *model, mp: *mp, graph: *graphFam, lifetime: *lifetime, metric: *metric,
		grid: *gridSpec, prec: *precSpec, seed: *seed, workers: *workers,
		resume: *resume, format: *format,
		target: *target, knob: *knob, bracket: *bracket, tol: *tol,
		maxEvals: *maxEvals, expand: *expand, decreasing: *decreasing,
	})
	if *metricsDump {
		obs.Default().WritePrometheus(os.Stderr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

type cfg struct {
	model, mp, graph, metric, grid, prec, resume, format, knob, bracket string
	lifetime, workers, maxEvals, expand                                 int
	seed                                                                uint64
	target, tol                                                         float64
	decreasing                                                          bool
}

func run(c cfg) error {
	if c.model == "" {
		return errors.New("-model is required (see GET /models or cmd/gen -list-models)")
	}
	knobs, err := avail.ParseKnobs(c.mp)
	if err != nil {
		return err
	}
	axes, err := parseGrid(c.grid)
	if err != nil {
		return err
	}
	prec, err := parsePrecision(c.prec)
	if err != nil {
		return err
	}
	tgt := experiments.SweepTarget{
		Model: c.model, MP: knobs, Graph: c.graph,
		Lifetime: c.lifetime, Metric: c.metric,
	}
	grid := sweep.Grid{Axes: axes}
	if err := tgt.Validate(grid); err != nil {
		return err
	}
	// The batched per-cell source: deterministic substrates relabel one
	// per-worker network in place per trial; randomized substrates fall
	// back to per-trial rebuilds. Results are bit-identical either way.
	src, err := tgt.Source()
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if c.target >= 0 {
		return runThreshold(ctx, c, grid, prec, tgt, src)
	}
	return runGrid(ctx, c, grid, prec, tgt, src)
}

// runGrid estimates every grid cell, checkpointing to -resume when set.
func runGrid(ctx context.Context, c cfg, grid sweep.Grid, prec sweep.Precision,
	tgt experiments.SweepTarget, src sweep.CellSource) error {
	if len(grid.Axes) == 0 {
		return errors.New("grid mode needs -grid (or use -target for threshold mode)")
	}
	s := sweep.Sweep{Grid: grid, Kind: tgt.Kind(), Prec: prec, Seed: c.seed, Workers: c.workers, Source: src}

	var prior *sweep.Checkpoint
	if c.resume != "" {
		var err error
		prior, err = sweep.ReadCheckpointFile(c.resume)
		switch {
		case errors.Is(err, os.ErrNotExist):
			prior = nil // fresh run; the file appears after the first cell
		case err != nil:
			return err
		default:
			// Validate before running anything: a checkpoint from a
			// different spec or a reshaped grid must fail here with a clear
			// message, not poison cells or panic mid-run.
			if err := prior.Validate(s.SpecKey(), grid); err != nil {
				return fmt.Errorf("-resume %s: %w", c.resume, err)
			}
			fmt.Fprintf(os.Stderr, "sweep: resuming %d/%d cells from %s\n",
				len(prior.Cells), grid.Size(), c.resume)
		}
	}

	// Accumulate the checkpoint live so every completed cell is durable
	// the moment it finishes.
	acc := &sweep.Checkpoint{Spec: s.SpecKey()}
	if prior != nil {
		acc.Cells = append(acc.Cells, prior.Cells...)
	}
	s.OnCell = func(cell sweep.Cell) {
		acc.Cells = append(acc.Cells, cell)
		fmt.Fprintf(os.Stderr, "sweep: cell %d/%d done (%d trials, ±%.4g)\n",
			len(acc.Cells), grid.Size(), cell.Est.N, cell.Est.Half)
		if c.resume != "" {
			if err := acc.WriteFile(c.resume); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: checkpoint save failed: %v\n", err)
			}
		}
	}

	cp, runErr := s.Run(ctx, prior, nil)
	if cp != nil && c.resume != "" {
		if err := cp.WriteFile(c.resume); err != nil {
			return err
		}
	}
	if runErr != nil && cp != nil && ctx.Err() != nil {
		if c.resume != "" {
			fmt.Fprintf(os.Stderr, "sweep: interrupted with %d/%d cells done; rerun with -resume %s to continue\n",
				len(cp.Cells), grid.Size(), c.resume)
		} else {
			fmt.Fprintf(os.Stderr, "sweep: interrupted with %d/%d cells done; no checkpoint was kept (pass -resume FILE to make runs resumable)\n",
				len(cp.Cells), grid.Size())
		}
	}
	if cp == nil {
		return runErr
	}
	if err := printGrid(c, grid, cp); err != nil {
		return err
	}
	return runErr
}

func printGrid(c cfg, grid sweep.Grid, cp *sweep.Checkpoint) error {
	if c.format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cp)
	}
	tb := sweep.CellTable(
		fmt.Sprintf("Adaptive sweep: %s of %s on %s", c.metric, c.model, c.graph),
		grid, cp.Cells)
	tb.AddNote("seed=%d; deterministic for any -workers; spec %s", c.seed, cp.Spec)
	fmt.Println(tb.Render())
	return nil
}

// crossingRow is the JSON record of one located threshold.
type crossingRow struct {
	Context  map[string]float64 `json:"context,omitempty"`
	Crossing sweep.Crossing     `json:"crossing"`
	Estimate sweep.Estimate     `json:"estimate_at_crossing"`
	Trials   int                `json:"trials_total"`
}

// runThreshold bisects the knob once per cell of the remaining grid axes.
func runThreshold(ctx context.Context, c cfg, grid sweep.Grid, prec sweep.Precision,
	tgt experiments.SweepTarget, src sweep.CellSource) error {
	if c.knob == "" || c.bracket == "" {
		return errors.New("threshold mode needs -knob and -bracket lo:hi")
	}
	if c.resume != "" {
		// Fail loudly rather than let grid mode train users to expect a
		// checkpoint that threshold mode never writes.
		return errors.New("-resume applies to grid sweeps only; threshold searches are not checkpointed")
	}
	for _, a := range grid.Axes {
		if a.Name == c.knob {
			return fmt.Errorf("knob %q cannot also be a grid axis", c.knob)
		}
	}
	// The knob rides through the observable as a synthetic axis; validate
	// it like one so a typo fails loudly instead of yielding a flat 0.
	// (Value 1 — not 0 — so a knob of n/lifetime passes the positivity
	// check; the bracket itself is the range actually probed.)
	knobGrid := sweep.Grid{Axes: append(append([]sweep.Axis{}, grid.Axes...),
		sweep.Axis{Name: c.knob, Values: []float64{1}})}
	if err := tgt.Validate(knobGrid); err != nil {
		return err
	}
	lo, hi, err := parseRange(c.bracket)
	if err != nil {
		return fmt.Errorf("bad -bracket: %v", err)
	}

	rows := make([]crossingRow, 0, grid.Size())
	tb := buildThresholdTable(c, grid)
	var firstErr error
	for idx := 0; idx < grid.Size(); idx++ {
		if ctx.Err() != nil {
			break
		}
		cellValues := grid.Values(idx)
		a := sweep.Adaptive{
			Seed:    sweep.CellSeed(c.seed, 1<<20+idx),
			Workers: c.workers, Kind: tgt.Kind(), Prec: prec,
		}
		cr, last, trials, err := sweep.Threshold{
			Target: c.target, Lo: lo, Hi: hi, Tol: c.tol,
			MaxEvals: c.maxEvals, Expand: c.expand, Decreasing: c.decreasing,
			OnEval: func(x, y float64) {
				fmt.Fprintf(os.Stderr, "sweep: %s=%.5g → %.4f\n", c.knob, x, y)
			},
		}.FindAdaptiveSource(ctx, a, func(x float64) sweep.Source {
			// One batched source per probe; every probe shares a.Seed —
			// common random numbers across the bisection, as before.
			vals := make(map[string]float64, len(cellValues)+1)
			for k, v := range cellValues {
				vals[k] = v
			}
			vals[c.knob] = x
			return src(vals, a.Seed, a.Workers, nil)
		})
		if err != nil {
			// A failure drops only this cell's row — crossings already
			// located still print below, as in grid mode — but the run
			// must still exit nonzero so scripts cannot mistake partial
			// (or empty) output for success.
			fmt.Fprintf(os.Stderr, "sweep: cell %v: %v\n", cellValues, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		rows = append(rows, crossingRow{Context: cellValues, Crossing: cr, Estimate: last, Trials: trials})
		cells := []string{}
		for _, a := range grid.Axes {
			cells = append(cells, table.F(cellValues[a.Name], 4))
		}
		cells = append(cells,
			table.F(cr.X, 5), table.F(cr.Lo, 5), table.F(cr.Hi, 5),
			table.F(last.Point, 3), table.F(last.Half, 3),
			table.I(trials), table.I(cr.Evals), fmt.Sprintf("%t", cr.Converged),
		)
		tb.AddRow(cells...)
	}

	if err := ctx.Err(); err != nil && firstErr == nil {
		firstErr = err
	}
	if c.format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
		return firstErr
	}
	tb.AddNote("target %s(%s) = %g, knob tolerance %g, seed %d", c.metric, c.knob, c.target, c.tol, c.seed)
	fmt.Println(tb.Render())
	return firstErr
}

func buildThresholdTable(c cfg, grid sweep.Grid) *table.Table {
	cols := []string{}
	for _, a := range grid.Axes {
		cols = append(cols, a.Name)
	}
	cols = append(cols, c.knob+"*", "bracket lo", "bracket hi",
		"metric at *", "±CI", "trials", "evals", "converged")
	return table.New(
		fmt.Sprintf("Threshold: %s of %s crosses %g in %s", c.metric, c.model, c.target, c.knob),
		cols...)
}

// parseGrid parses "name=1,2,3;other=lo:hi:k" into axes.
func parseGrid(s string) ([]sweep.Axis, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var axes []sweep.Axis
	for _, part := range strings.Split(s, ";") {
		name, spec, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("bad grid axis %q, want name=values", part)
		}
		spec = strings.TrimSpace(spec)
		if strings.Contains(spec, ":") {
			fields := strings.Split(spec, ":")
			if len(fields) != 3 {
				return nil, fmt.Errorf("bad axis range %q, want lo:hi:steps", spec)
			}
			lo, err1 := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
			hi, err2 := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
			k, err3 := strconv.Atoi(strings.TrimSpace(fields[2]))
			if err1 != nil || err2 != nil || err3 != nil || k < 1 {
				return nil, fmt.Errorf("bad axis range %q", spec)
			}
			axes = append(axes, sweep.Linspace(name, lo, hi, k))
			continue
		}
		ax := sweep.Axis{Name: name}
		for _, f := range strings.Split(spec, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("axis %q: %v", name, err)
			}
			ax.Values = append(ax.Values, v)
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// parsePrecision parses "abs=0.05,conf=0.95,min=16,max=2000,batch=32".
func parsePrecision(s string) (sweep.Precision, error) {
	var p sweep.Precision
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("bad precision field %q, want name=value", kv)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return p, fmt.Errorf("precision %q: %v", name, err)
		}
		switch strings.TrimSpace(name) {
		case "abs":
			p.Abs = v
		case "rel":
			p.Rel = v
		case "conf":
			p.Confidence = v
		case "min":
			p.MinTrials = int(v)
		case "max":
			p.MaxTrials = int(v)
		case "batch":
			p.Batch = int(v)
		default:
			return p, fmt.Errorf("unknown precision field %q (want abs, rel, conf, min, max, batch)", name)
		}
	}
	return p, p.Validate()
}

// parseRange parses "lo:hi".
func parseRange(s string) (lo, hi float64, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q is not lo:hi", s)
	}
	if lo, err = strconv.ParseFloat(strings.TrimSpace(a), 64); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.ParseFloat(strings.TrimSpace(b), 64); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
