// Command expansion runs Algorithm 1 (the Expansion Process) on one
// instance of the directed normalized uniform random temporal clique and
// narrates the run: window plan, frontier growth, the matched edge, the
// constructed journey and how it compares to the true foremost journey.
//
// Usage:
//
//	expansion -n 1024
//	expansion -n 1024 -s 3 -t 99 -c1 2 -c2 8
//	expansion -n 512 -intersect   # count set-intersection successes too
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/temporal"
)

func main() {
	var (
		n         = flag.Int("n", 512, "clique size")
		s         = flag.Int("s", 0, "source vertex")
		t         = flag.Int("t", 1, "target vertex")
		c1        = flag.Float64("c1", 0, "wide-window constant (0 = default)")
		c2        = flag.Int("c2", 0, "expansion-window width (0 = default)")
		d         = flag.Int("d", 0, "expansion steps per side (0 = auto)")
		seed      = flag.Uint64("seed", 1, "instance seed")
		intersect = flag.Bool("intersect", false, "allow set-intersection success (ablation)")
	)
	flag.Parse()
	if *s == *t || *s < 0 || *t < 0 || *s >= *n || *t >= *n {
		fmt.Fprintln(os.Stderr, "expansion: need distinct s, t in [0, n)")
		os.Exit(2)
	}

	g := graph.Clique(*n, true)
	lab := assign.NormalizedURTN(g, rng.New(*seed))
	net := temporal.MustNew(g, *n, lab)

	cfg := core.ExpansionConfig{C1: *c1, C2: *c2, D: *d, AllowIntersection: *intersect}
	plan := core.PlanExpansion(*n, cfg)
	fmt.Printf("plan: W1=%d, C2=%d, D=%d — all windows fit in (0, %d] (lifetime %d)\n",
		plan.W1, plan.C2, plan.D, plan.Bound, net.Lifetime())
	for i := 1; i <= plan.D+1; i++ {
		lo, hi := plan.ForwardWindow(i)
		fmt.Printf("  ∆%-2d = (%d, %d]\n", i, lo, hi)
	}
	lo, hi := plan.MatchWindow()
	fmt.Printf("  ∆*  = (%d, %d]\n", lo, hi)
	for i := plan.D + 1; i >= 1; i-- {
		lo, hi := plan.ReverseWindow(i)
		fmt.Printf("  ∆'%-2d= (%d, %d]\n", i, lo, hi)
	}

	res := core.Expansion(net, *s, *t, cfg)
	fmt.Printf("\nforward frontier sizes |Γ_i(s)| : %v\n", res.ForwardSizes)
	fmt.Printf("reverse frontier sizes |Γ'_i(t)|: %v\n", res.ReverseSizes)
	if !res.Success {
		fmt.Printf("\nFAILURE: %s\n", res.Reason)
		os.Exit(1)
	}
	how := "∆*-matched edge"
	if res.ViaIntersection {
		how = "set intersection (ablation path)"
	}
	fmt.Printf("\nSUCCESS via %s\n", how)
	fmt.Printf("journey: %v\n", res.Journey)
	fmt.Printf("arrival: %d (plan bound %d)\n", res.Arrival, plan.Bound)

	arr := net.EarliestArrivals(*s)
	fmt.Printf("exact foremost δ(s,t) = %d\n", arr[*t])
	if e, ok := g.EdgeBetween(*s, *t); ok {
		fmt.Printf("waiting for the direct arc would take: %d (≈ n/2 in expectation)\n",
			net.EdgeLabels(e)[0])
	}
}
