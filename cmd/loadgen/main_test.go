package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/qindex"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/temporal"
)

// queryServer boots a real query-serving handler over a small network.
func queryServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := graph.Grid(5, 5)
	stream := rng.New(3)
	sets := make([][]int, g.M())
	for e := range sets {
		sets[e] = []int{1 + stream.Intn(10), 1 + stream.Intn(10)}
	}
	net := temporal.MustNew(g, 10, temporal.LabelingFromSets(sets))
	m := service.New(service.Options{Workers: 1})
	t.Cleanup(m.Close)
	qe := service.NewQueryEngine(qindex.New(net, qindex.Options{Mode: qindex.ModeFull}))
	srv := httptest.NewServer(service.NewHandlerWith(m, qe))
	t.Cleanup(srv.Close)
	return srv
}

// TestClosedLoopRun drives a short closed-loop run end to end, including
// the /query/stats n discovery and the JSON report file.
func TestClosedLoopRun(t *testing.T) {
	srv := queryServer(t)
	out := filepath.Join(t.TempDir(), "rep.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-duration", "300ms", "-c", "4",
		"-start", "3", "-seed", "7", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run → %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report file: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Mode != "closed" || rep.Requests == 0 || rep.Errors != 0 || rep.QPS <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Fatalf("quantile ordering broken: %+v", rep)
	}
	if !strings.Contains(stdout.String(), "queries/s") {
		t.Fatalf("stdout missing summary: %s", stdout.String())
	}
}

// TestOpenLoopZipfBatch exercises open-loop pacing with zipf keys and
// batched POSTs; target QPS must roughly bound the achieved rate.
func TestOpenLoopZipfBatch(t *testing.T) {
	srv := queryServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-duration", "400ms", "-c", "2",
		"-qps", "50", "-dist", "zipf", "-zipf-s", "1.3", "-batch", "4",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run → %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "requests") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}

// TestMaxP99Gate forces an unmeetable bound and expects exit 1.
func TestMaxP99Gate(t *testing.T) {
	srv := queryServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-duration", "200ms", "-c", "2", "-max-p99", "1ns",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run with -max-p99 1ns → %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "exceeds") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestFlagValidation covers the config error paths without a server.
func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-dist", "normal"},
		{"-zipf-s", "0.5"},
		{"-c", "0"},
		{"-batch", "0"},
		{"-start", "0"},
		{"-duration", "0s"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) → %d, want 2", args, code)
		}
	}
}

// TestServerUnavailable: a dead endpoint must fail cleanly, not hang.
func TestServerUnavailable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{"-url", "http://127.0.0.1:1", "-duration", "100ms"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run against dead server → %d, want 1", code)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("dead-server run hung")
	}
}
