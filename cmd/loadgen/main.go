// Command loadgen drives a query-serving repro instance (serve -net …)
// with point or batch journey queries and reports throughput and latency
// percentiles.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -duration 10s -c 32            # closed loop
//	loadgen -url http://localhost:8080 -qps 50000 -c 64 -dist zipf    # open loop
//	loadgen -url http://localhost:8080 -batch 64 -out loadgen.json
//
// Closed loop (-qps 0, the default) has every worker fire its next
// request the moment the previous answer lands — it measures the
// server's capacity. Open loop (-qps > 0) paces requests against an
// absolute schedule regardless of response times, so queueing delay
// shows up in the latencies instead of being hidden by coordinated
// omission.
//
// Sources and destinations are drawn uniformly or Zipf-distributed
// (-dist zipf, exponent -zipf-s): the skewed mode concentrates traffic
// on few sources, the regime where the arrival index's LRU mode shines.
//
// With -max-p99 the process exits non-zero when the measured p99 exceeds
// the bound — the CI smoke gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// config is the parsed flag set.
type config struct {
	url      string
	duration time.Duration
	qps      float64
	workers  int
	dist     string
	zipfS    float64
	n        int
	startMax int
	batch    int
	seed     int64
	maxP99   time.Duration
	out      string
}

// report is the run summary, printed to stdout and optionally written as
// JSON with -out. Latency quantiles are milliseconds.
type report struct {
	URL       string  `json:"url"`
	Mode      string  `json:"mode"` // "closed" or "open"
	Dist      string  `json:"dist"`
	Workers   int     `json:"workers"`
	Batch     int     `json:"batch"`
	TargetQPS float64 `json:"target_qps,omitempty"`
	Duration  float64 `json:"duration_s"`
	Requests  int64   `json:"requests"`
	Queries   int64   `json:"queries"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"` // achieved queries/s
	P50       float64 `json:"p50_ms"`
	P90       float64 `json:"p90_ms"`
	P95       float64 `json:"p95_ms"`
	P99       float64 `json:"p99_ms"`
	Max       float64 `json:"max_ms"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := config{}
	fs.StringVar(&cfg.url, "url", "http://localhost:8080", "base URL of the serving instance")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement window")
	fs.Float64Var(&cfg.qps, "qps", 0, "target queries/s for open-loop pacing (0: closed loop)")
	fs.IntVar(&cfg.workers, "c", 16, "concurrent workers")
	fs.StringVar(&cfg.dist, "dist", "uniform", "query key distribution: uniform or zipf")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.1, "zipf exponent (with -dist zipf)")
	fs.IntVar(&cfg.n, "n", 0, "vertex count (0: fetch from /query/stats)")
	fs.IntVar(&cfg.startMax, "start", 1, "departure floors drawn uniformly from [1,start]")
	fs.IntVar(&cfg.batch, "batch", 1, "queries per request (1: GET, >1: batched POST)")
	fs.Int64Var(&cfg.seed, "seed", 1, "RNG seed")
	fs.DurationVar(&cfg.maxP99, "max-p99", 0, "fail (exit 1) when p99 exceeds this bound (0: no gate)")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}
	rep, err := drive(&cfg)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%d requests (%d queries, %d errors) in %.2fs: %.0f queries/s\n",
		rep.Requests, rep.Queries, rep.Errors, rep.Duration, rep.QPS)
	fmt.Fprintf(stdout, "latency ms: p50=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		rep.P50, rep.P90, rep.P95, rep.P99, rep.Max)
	if cfg.out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
	}
	if rep.Errors > 0 {
		fmt.Fprintf(stderr, "loadgen: %d request errors\n", rep.Errors)
		return 1
	}
	if cfg.maxP99 > 0 && rep.P99 > float64(cfg.maxP99)/1e6 {
		fmt.Fprintf(stderr, "loadgen: p99 %.3fms exceeds the %s gate\n", rep.P99, cfg.maxP99)
		return 1
	}
	return 0
}

func (c *config) validate() error {
	if c.dist != "uniform" && c.dist != "zipf" {
		return fmt.Errorf("unknown -dist %q (want uniform or zipf)", c.dist)
	}
	if c.zipfS <= 1 {
		return fmt.Errorf("-zipf-s must be > 1, got %g", c.zipfS)
	}
	if c.workers < 1 {
		return fmt.Errorf("-c must be ≥ 1, got %d", c.workers)
	}
	if c.batch < 1 {
		return fmt.Errorf("-batch must be ≥ 1, got %d", c.batch)
	}
	if c.startMax < 1 {
		return fmt.Errorf("-start must be ≥ 1, got %d", c.startMax)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %s", c.duration)
	}
	c.url = strings.TrimRight(c.url, "/")
	return nil
}

// fetchN asks the server for its vertex count.
func fetchN(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url + "/query/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /query/stats → %d (is the server in query mode?)", resp.StatusCode)
	}
	var st struct {
		N int `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.N < 1 {
		return 0, fmt.Errorf("server reports an empty network (n=%d)", st.N)
	}
	return st.N, nil
}

// drawer yields query keys under the configured distribution. Each
// worker owns one, so no locking.
type drawer struct {
	r    *rand.Rand
	zipf *rand.Zipf
	n    int
	smax int
}

func newDrawer(cfg *config, worker int) *drawer {
	r := rand.New(rand.NewSource(cfg.seed + int64(worker)*7919))
	d := &drawer{r: r, n: cfg.n, smax: cfg.startMax}
	if cfg.dist == "zipf" && cfg.n > 1 {
		d.zipf = rand.NewZipf(r, cfg.zipfS, 1, uint64(cfg.n-1))
	}
	return d
}

func (d *drawer) vertex() int {
	if d.zipf != nil {
		return int(d.zipf.Uint64())
	}
	return d.r.Intn(d.n)
}

func (d *drawer) query() service.PointQuery {
	q := service.PointQuery{Src: d.vertex(), Dst: d.vertex(), Start: 1}
	if d.smax > 1 {
		q.Start = 1 + int32(d.r.Intn(d.smax))
	}
	return q
}

// workerResult is one worker's tally.
type workerResult struct {
	lat      []time.Duration
	requests int64
	errors   int64
}

func drive(cfg *config) (*report, error) {
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers * 2,
			MaxIdleConnsPerHost: cfg.workers * 2,
		},
		Timeout: 30 * time.Second,
	}
	if cfg.n == 0 {
		n, err := fetchN(client, cfg.url)
		if err != nil {
			return nil, err
		}
		cfg.n = n
	}
	if cfg.n < 1 {
		return nil, fmt.Errorf("-n must be ≥ 1, got %d", cfg.n)
	}

	// Open loop: each of the c workers fires every c/qps seconds against
	// an absolute schedule, so a slow response does not push back the
	// next send.
	var interval time.Duration
	if cfg.qps > 0 {
		interval = time.Duration(float64(cfg.workers) * float64(time.Second) / cfg.qps)
		if interval <= 0 {
			interval = time.Nanosecond
		}
	}

	results := make([]workerResult, cfg.workers)
	begin := time.Now()
	deadline := begin.Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := newDrawer(cfg, w)
			res := &results[w]
			// Stagger open-loop workers across one interval so sends
			// spread evenly instead of arriving in bursts of c.
			next := begin.Add(interval * time.Duration(w) / time.Duration(max(cfg.workers, 1)))
			for {
				if interval > 0 {
					if now := time.Now(); next.After(now) {
						time.Sleep(next.Sub(now))
					}
					next = next.Add(interval)
				}
				if !time.Now().Before(deadline) {
					return
				}
				t0 := time.Now()
				err := fire(client, cfg, d)
				res.lat = append(res.lat, time.Since(t0))
				res.requests++
				if err != nil {
					res.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	var all []time.Duration
	rep := &report{
		URL: cfg.url, Dist: cfg.dist, Workers: cfg.workers, Batch: cfg.batch,
		TargetQPS: cfg.qps, Mode: "closed", Duration: elapsed.Seconds(),
	}
	if cfg.qps > 0 {
		rep.Mode = "open"
	}
	for i := range results {
		all = append(all, results[i].lat...)
		rep.Requests += results[i].requests
		rep.Errors += results[i].errors
	}
	rep.Queries = rep.Requests * int64(cfg.batch)
	rep.QPS = float64(rep.Queries) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ms := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return float64(all[i]) / 1e6
	}
	rep.P50, rep.P90, rep.P95, rep.P99 = ms(0.50), ms(0.90), ms(0.95), ms(0.99)
	rep.Max = ms(1)
	return rep, nil
}

// fire sends one request — a GET for batch 1, a batched POST otherwise —
// and drains the response.
func fire(client *http.Client, cfg *config, d *drawer) error {
	var resp *http.Response
	var err error
	if cfg.batch == 1 {
		q := d.query()
		resp, err = client.Get(fmt.Sprintf("%s/query?src=%d&dst=%d&start=%d", cfg.url, q.Src, q.Dst, q.Start))
	} else {
		req := service.BatchRequest{Queries: make([]service.PointQuery, cfg.batch)}
		for i := range req.Queries {
			req.Queries[i] = d.query()
		}
		body, _ := json.Marshal(req)
		resp, err = client.Post(cfg.url+"/query", "application/json", strings.NewReader(string(body)))
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
