package main

import (
	"strings"
	"testing"
)

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func asMaps(bs ...Benchmark) (map[string]Benchmark, []string) {
	m := map[string]Benchmark{}
	var order []string
	for _, b := range bs {
		m[b.Name] = b
		order = append(order, b.Name)
	}
	return m, order
}

func TestDiffGates(t *testing.T) {
	base, order := asMaps(
		bench("KernelRelabel/x", 1000, 0),
		bench("KernelTreach", 2000, 0),
		bench("KernelGone", 500, 0),
		bench("SweepAdaptiveOverhead", 3000, 100),
	)
	fresh, _ := asMaps(
		bench("KernelRelabel/x", 1250, 0), // +25%: within the 30% limit
		bench("KernelTreach", 2000, 1),    // alloc regression
		// KernelGone missing: gate failure
		bench("SweepAdaptiveOverhead", 30000, 500), // not gated: never fails
		bench("KernelNew", 1, 0),                   // new: passes
	)
	_, failures := diff(base, fresh, order, 0.30, "Kernel")
	if len(failures) != 2 {
		t.Fatalf("want 2 failures, got %d: %v", len(failures), failures)
	}
	joined := strings.Join(failures, "\n")
	for _, want := range []string{"KernelTreach", "KernelGone"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("failures missing %s: %v", want, failures)
		}
	}
	if strings.Contains(joined, "Sweep") || strings.Contains(joined, "KernelRelabel/x") {
		t.Fatalf("unexpected failure recorded: %v", failures)
	}
}

func TestDiffNsRegression(t *testing.T) {
	base, order := asMaps(bench("KernelSlow", 1000, 2))
	fresh, _ := asMaps(bench("KernelSlow", 1400, 2))
	if _, failures := diff(base, fresh, order, 0.30, "Kernel"); len(failures) != 1 {
		t.Fatalf("want the +40%% ns/op regression flagged, got %v", failures)
	}
	// The same delta passes under a looser limit, and allocs staying flat
	// is fine.
	if _, failures := diff(base, fresh, order, 0.50, "Kernel"); len(failures) != 0 {
		t.Fatalf("want no failures at 50%% limit, got %v", failures)
	}
}

func TestDiffAllocImprovementPasses(t *testing.T) {
	base, order := asMaps(bench("KernelX", 1000, 5))
	fresh, _ := asMaps(bench("KernelX", 700, 0))
	if _, failures := diff(base, fresh, order, 0.30, "Kernel"); len(failures) != 0 {
		t.Fatalf("improvement flagged as regression: %v", failures)
	}
}

// TestDiffMultiPrefixGate exercises the comma-separated gate: Kernel* and
// Obs* both gated, Sweep* still informational.
func TestDiffMultiPrefixGate(t *testing.T) {
	base, order := asMaps(
		bench("KernelX", 1000, 0),
		bench("ObsCounterInc", 10, 0),
		bench("SweepAdaptiveOverhead", 3000, 100),
	)
	fresh, _ := asMaps(
		bench("KernelX", 1000, 0),
		bench("ObsCounterInc", 10, 1),              // alloc regression, gated
		bench("SweepAdaptiveOverhead", 30000, 500), // not gated
	)
	_, failures := diff(base, fresh, order, 0.30, "Kernel,Obs")
	if len(failures) != 1 || !strings.Contains(failures[0], "ObsCounterInc") {
		t.Fatalf("want only the Obs alloc regression, got %v", failures)
	}
	if !gatedBy("KernelX", "Kernel,Obs") || !gatedBy("ObsSpan", "Kernel,Obs") || gatedBy("SweepX", "Kernel,Obs") {
		t.Fatal("gatedBy prefix logic wrong")
	}
	if !gatedBy("QueryIndexHitFull", "Kernel,Obs,Query") || gatedBy("QueryIndexHitFull", "Kernel,Obs") {
		t.Fatal("Query gating wrong")
	}
	// The default gate covers the batched sweep engine but not the rebuild
	// oracles or the adaptive-estimator wall-clock benchmarks.
	const def = "Kernel,Obs,Query,SweepBatched"
	if !gatedBy("SweepBatchedGeometric", def) || !gatedBy("SweepBatchedIIDClique", def) {
		t.Fatal("SweepBatched gating wrong")
	}
	if gatedBy("SweepRebuildGeometric", def) || gatedBy("SweepAdaptiveOverhead", def) {
		t.Fatal("non-batched sweep benchmarks must stay ungated")
	}
}
