// Command benchdiff is the CI performance-regression gate: it compares a
// fresh kernel benchmark run (BENCH_kernels.json, the cmd/benchjson
// format) against a committed baseline and exits nonzero when a gated
// benchmark regressed.
//
// Gated benchmarks are the ones whose stripped name starts with one of
// the comma-separated -gate prefixes (default "Kernel,Obs,Query,SweepBatched",
// i.e. the BenchmarkKernel*, BenchmarkObs* and BenchmarkQuery* families plus
// the BenchmarkSweepBatched* engine benchmarks — the batched trial engine is
// a headline optimization, so its cell throughput and allocation counts are
// regression-gated alongside the kernels). A gated benchmark fails when
//
//   - its ns/op grew by more than -max-ns-regress (default 0.30 = +30%)
//     over the baseline, or
//   - its allocs/op increased at all — allocation counts are exact and
//     machine-independent, so any growth is a real regression (the batched
//     trial engine's 0 allocs/op steady state is pinned this way), or
//   - it is present in the baseline but missing from the fresh run — a
//     silently dropped benchmark would blind the gate.
//
// Benchmarks new in the fresh run pass (they have no baseline yet; commit
// an updated baseline to start gating them). Non-gated benchmarks are
// reported but never fail the run — wall-clock numbers for the experiment
// and sweep suites drift with machine load, and the gate must not flap on
// them.
//
// Usage:
//
//	go run ./cmd/benchdiff -baseline testdata/bench_baseline.json BENCH_kernels.json
//
// To refresh the baseline after an intentional performance change:
//
//	make bench && cp BENCH_kernels.json testdata/bench_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Benchmark mirrors cmd/benchjson's entry shape.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report mirrors cmd/benchjson's document shape.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var (
	baselinePath = flag.String("baseline", "testdata/bench_baseline.json", "baseline BENCH_kernels.json to compare against")
	maxNsRegress = flag.Float64("max-ns-regress", 0.30, "maximum tolerated fractional ns/op growth on gated benchmarks")
	gatePrefix   = flag.String("gate", "Kernel,Obs,Query,SweepBatched", "comma-separated benchmark-name prefixes (after the Benchmark prefix is stripped) that are gated")
)

// gatedBy reports whether name starts with any of the comma-separated
// prefixes in gate.
func gatedBy(name, gate string) bool {
	for _, p := range strings.Split(gate, ",") {
		if p != "" && strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func load(path string) (map[string]Benchmark, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Benchmark, len(rep.Benchmarks))
	order := make([]string, 0, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if _, dup := byName[b.Name]; !dup {
			order = append(order, b.Name)
		}
		byName[b.Name] = b
	}
	return byName, order, nil
}

// diff compares fresh against base and returns the human-readable report
// lines and the gate failures.
func diff(base, fresh map[string]Benchmark, baseOrder []string, maxNs float64, gate string) (lines, failures []string) {
	for _, name := range baseOrder {
		b := base[name]
		gated := gatedBy(name, gate)
		f, ok := fresh[name]
		if !ok {
			if gated {
				failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the fresh run", name))
			} else {
				lines = append(lines, fmt.Sprintf("  %-55s missing from fresh run (not gated)", name))
			}
			continue
		}
		bn, fn := b.Metrics["ns/op"], f.Metrics["ns/op"]
		var growth float64
		if bn > 0 {
			growth = fn/bn - 1
		}
		ba, fa := b.Metrics["allocs/op"], f.Metrics["allocs/op"]
		status := "ok"
		switch {
		case gated && fa > ba:
			status = "FAIL allocs"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f → %.0f (any increase fails)", name, ba, fa))
		case gated && bn > 0 && growth > maxNs:
			status = "FAIL ns/op"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f → %.0f (%+.1f%%, limit %+.0f%%)", name, bn, fn, 100*growth, 100*maxNs))
		case !gated:
			status = "info"
		}
		lines = append(lines, fmt.Sprintf("  %-55s ns/op %12.0f → %12.0f (%+6.1f%%)  allocs/op %4.0f → %4.0f  [%s]",
			name, bn, fn, 100*growth, ba, fa, status))
	}
	var added []string
	for name := range fresh {
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		lines = append(lines, fmt.Sprintf("  %-55s new (no baseline; passes)", name))
	}
	return lines, failures
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline FILE] [-max-ns-regress F] [-gate PREFIX] FRESH.json")
		os.Exit(2)
	}
	base, baseOrder, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, _, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	lines, failures := diff(base, fresh, baseOrder, *maxNsRegress, *gatePrefix)
	fmt.Printf("benchdiff: %s vs baseline %s (gate {%s}*, ns/op limit %+.0f%%)\n",
		flag.Arg(0), *baselinePath, *gatePrefix, 100**maxNsRegress)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Println("  " + f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
