// Command reach measures temporal reachability under random labels: the
// probability that r uniform labels per edge preserve reachability
// (Theorems 6 and 7), or the estimated threshold r(n) when -estimate is
// given.
//
// Usage:
//
//	reach -family star -n 128 -r 8
//	reach -family star -n 128 -estimate
//	reach -family cycle -n 64 -r 40 -trials 100
//	reach -family grid -n 36
//
// Families: star, path, cycle, grid (⌈n/4⌉×4), hypercube (2^⌊log₂n⌋),
// bintree, clique.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
)

func buildFamily(name string, n int) (*graph.Graph, error) {
	switch name {
	case "star":
		return graph.Star(n), nil
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "grid":
		rows := (n + 3) / 4
		return graph.Grid(rows, 4), nil
	case "hypercube":
		d := int(math.Floor(math.Log2(float64(n))))
		return graph.Hypercube(d), nil
	case "bintree":
		return graph.BinaryTree(n), nil
	case "clique":
		return graph.Clique(n, false), nil
	}
	return nil, fmt.Errorf("unknown family %q", name)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reach", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family   = fs.String("family", "star", "graph family")
		n        = fs.Int("n", 64, "requested size (some families round)")
		r        = fs.Int("r", 0, "labels per edge (0 = Theorem 7's 2·d·ln n)")
		estimate = fs.Bool("estimate", false, "estimate the threshold r(n) instead")
		trials   = fs.Int("trials", 60, "Monte-Carlo trials")
		seed     = fs.Uint64("seed", 1, "base seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g, err := buildFamily(*family, *n)
	if err != nil {
		fmt.Fprintf(stderr, "reach: %v\n", err)
		return 2
	}
	nv := g.N()
	diam, conn := graph.Diameter(g)
	if !conn {
		fmt.Fprintln(stderr, "reach: family instance is disconnected")
		return 1
	}
	fmt.Fprintf(stdout, "%s: n=%d m=%d diameter=%d lifetime=%d\n", *family, nv, g.M(), diam, nv)

	if *estimate {
		target := core.WHPTarget(nv)
		rMax := 8 * core.TheoremSevenR(nv, diam)
		rhat, ok := core.EstimateR(g, nv, target, *trials, *seed, rMax)
		marker := ""
		if !ok {
			marker = " (search cap hit)"
		}
		fmt.Fprintf(stdout, "estimated r(n) at target %.4f: %d%s\n", target, rhat, marker)
		fmt.Fprintf(stdout, "Theorem 7 sufficient r = 2·d·ln n = %d\n", core.TheoremSevenR(nv, diam))
		fmt.Fprintf(stdout, "r(n)/log₂ n = %.2f\n", float64(rhat)/math.Log2(float64(nv)))
		return 0
	}

	rr := *r
	if rr == 0 {
		rr = core.TheoremSevenR(nv, diam)
		fmt.Fprintf(stdout, "using Theorem 7's r = 2·d·ln n = %d\n", rr)
	}
	rate, lo, hi := core.ReachabilityRate(g, nv, rr, *trials, *seed)
	fmt.Fprintf(stdout, "Pr[Treach] with r=%d: %.3f  (95%% CI [%.3f, %.3f], %d trials)\n", rr, rate, lo, hi, *trials)
	fmt.Fprintf(stdout, "whp target 1-1/n = %.4f\n", core.WHPTarget(nv))
	return 0
}
