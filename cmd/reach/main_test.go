package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBuildFamily pins the size rounding of each family and the unknown
// error.
func TestBuildFamily(t *testing.T) {
	cases := []struct {
		family string
		n      int
		wantN  int
	}{
		{"star", 16, 16},
		{"path", 9, 9},
		{"cycle", 8, 8},
		{"grid", 10, 12}, // ⌈10/4⌉ = 3 rows × 4
		{"hypercube", 20, 16},
		{"bintree", 7, 7},
		{"clique", 5, 5},
	}
	for _, c := range cases {
		g, err := buildFamily(c.family, c.n)
		if err != nil {
			t.Fatalf("buildFamily(%q, %d): %v", c.family, c.n, err)
		}
		if g.N() != c.wantN {
			t.Errorf("buildFamily(%q, %d).N() = %d, want %d", c.family, c.n, g.N(), c.wantN)
		}
	}
	if _, err := buildFamily("mobius", 8); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestRateRun checks the fixed-r Monte-Carlo output, deterministic for a
// fixed seed, on a small star where r = 8 is ample.
func TestRateRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-family", "star", "-n", "32", "-r", "8", "-trials", "20", "-seed", "3"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run → %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"star: n=32 m=31 diameter=2 lifetime=32",
		"Pr[Treach] with r=8:",
		"95% CI",
		"whp target 1-1/n = 0.9688",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Determinism: an identical invocation must render byte-identically.
	var again bytes.Buffer
	run([]string{"-family", "star", "-n", "32", "-r", "8", "-trials", "20", "-seed", "3"},
		&again, &stderr)
	if again.String() != out {
		t.Fatalf("same seed, different output:\n%s\nvs\n%s", out, again.String())
	}
}

// TestDefaultRUsesTheoremSeven: with -r 0 the tool must announce the
// Theorem 7 bound it substituted.
func TestDefaultRUsesTheoremSeven(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-family", "path", "-n", "8", "-trials", "4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run → %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "using Theorem 7's r = 2·d·ln n") {
		t.Fatalf("missing Theorem 7 line:\n%s", stdout.String())
	}
}

// TestEstimateRun drives the threshold search on a tiny instance.
func TestEstimateRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-family", "star", "-n", "16", "-estimate", "-trials", "10", "-seed", "2"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run → %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"estimated r(n) at target", "Theorem 7 sufficient r", "r(n)/log₂ n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFlagErrors covers the non-zero exits.
func TestFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-family", "mobius"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown family → %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag → %d, want 2", code)
	}
}
