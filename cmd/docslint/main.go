// Command docslint is the CI documentation gate. It enforces two
// invariants the docs overhaul introduced and that are otherwise easy to
// erode one PR at a time:
//
//   - every package under internal/ keeps its package comment in a
//     dedicated doc.go, so `go doc` and pkgsite have one canonical place
//     to look and a new file can't silently become the package comment
//     host;
//   - every relative markdown link in the repository's documentation
//     (README.md, docs/*.md, and any other root-level *.md) points at a
//     file or directory that exists, so refactors can't leave dangling
//     links behind.
//
// External links (http/https/mailto) and pure in-page anchors are
// skipped; a `#fragment` suffix on a relative link is stripped before the
// existence check. Exits nonzero listing every violation.
//
// Usage:
//
//	go run ./cmd/docslint          # lint the current directory
//	go run ./cmd/docslint -root .. # lint another tree
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var root = flag.String("root", ".", "repository root to lint")

// checkDocGo returns one problem per internal/* package directory that
// contains Go files but no doc.go. Nested packages (internal/a/b) are
// checked too; directories without Go files (testdata, fixtures) are
// ignored.
func checkDocGo(rootDir string) ([]string, error) {
	var problems []string
	internal := filepath.Join(rootDir, "internal")
	err := filepath.WalkDir(internal, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() || d.Name() == "testdata" {
			if d != nil && d.IsDir() && d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo, hasDoc := false, false
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			hasGo = true
			if e.Name() == "doc.go" {
				hasDoc = true
			}
		}
		if hasGo && !hasDoc {
			rel, _ := filepath.Rel(rootDir, path)
			problems = append(problems, fmt.Sprintf("%s: package has Go files but no doc.go", rel))
		}
		return nil
	})
	return problems, err
}

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope: the repo's docs use inline links.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// external reports whether a link target leaves the repository.
func external(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// checkLinks verifies every relative markdown link in file resolves to an
// existing file or directory, with targets resolved against the file's
// own directory and `#fragment` suffixes stripped.
func checkLinks(rootDir, file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	rel, _ := filepath.Rel(rootDir, file)
	var problems []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if external(target) || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", rel, i+1, m[1]))
			}
		}
	}
	return problems, nil
}

// docFiles lists the markdown files the linter covers: every *.md at the
// repository root plus everything under docs/.
func docFiles(rootDir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(rootDir, "*.md"))
	if err != nil {
		return nil, err
	}
	docs, err := filepath.Glob(filepath.Join(rootDir, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	files = append(files, docs...)
	sort.Strings(files)
	return files, nil
}

func run(rootDir string) ([]string, error) {
	problems, err := checkDocGo(rootDir)
	if err != nil {
		return nil, err
	}
	files, err := docFiles(rootDir)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		p, err := checkLinks(rootDir, f)
		if err != nil {
			return nil, err
		}
		problems = append(problems, p...)
	}
	return problems, nil
}

func main() {
	flag.Parse()
	problems, err := run(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		fmt.Printf("docslint: %d problem(s):\n", len(problems))
		for _, p := range problems {
			fmt.Println("  " + p)
		}
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}
