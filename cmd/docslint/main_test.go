package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates path (and parents) under dir with the given content.
func write(t *testing.T, dir, path, content string) {
	t.Helper()
	full := filepath.Join(dir, filepath.FromSlash(path))
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDocGo(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "internal/good/doc.go", "// Package good.\npackage good\n")
	write(t, dir, "internal/good/good.go", "package good\n")
	write(t, dir, "internal/bad/bad.go", "package bad\n")
	write(t, dir, "internal/bad/testdata/fixture.go", "package fixture\n")
	write(t, dir, "internal/empty/notes.txt", "no go files here\n")

	problems, err := checkDocGo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], filepath.Join("internal", "bad")) {
		t.Fatalf("want exactly the internal/bad violation, got %v", problems)
	}
}

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "exists.md", "target\n")
	write(t, dir, "docs/arch.md", strings.Join([]string{
		"[up](../exists.md)",           // ok: relative with ..
		"[frag](../exists.md#section)", // ok: fragment stripped
		"[dir](..)",                    // ok: directory target
		"[ext](https://example.com/x)", // skipped: external
		"[anchor](#local)",             // skipped: in-page
		"[gone](missing.md)",           // broken
	}, "\n"))

	problems, err := checkLinks(dir, filepath.Join(dir, "docs", "arch.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "missing.md") {
		t.Fatalf("want exactly the missing.md violation, got %v", problems)
	}
	if !strings.Contains(problems[0], "arch.md:6") {
		t.Fatalf("violation should carry file:line, got %v", problems)
	}
}

// TestRepositoryClean lints the actual repository: every internal package
// keeps a doc.go and no committed markdown link dangles. This is the same
// check `make lint-docs` runs in CI; failing here means a doc went stale
// in this very change.
func TestRepositoryClean(t *testing.T) {
	problems, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("repository docs not clean:\n%s", strings.Join(problems, "\n"))
	}
}
