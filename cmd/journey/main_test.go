package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/temporal"
)

const fixture = "testdata/grid12.tnet"

// fixtureNet decodes the committed network the golden assertions pin.
func fixtureNet(t *testing.T) *temporal.Network {
	t.Helper()
	f, err := os.Open(fixture)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := temporal.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestSingleQuery pins the -to output against the library's own answers
// on the committed fixture.
func TestSingleQuery(t *testing.T) {
	net := fixtureNet(t)
	arr := net.EarliestArrivals(0)
	target := -1
	for v := 1; v < net.Graph().N(); v++ {
		if arr[v] != temporal.Unreachable {
			target = v
		}
	}
	if target < 0 {
		t.Fatal("fixture: nothing reachable from 0")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-net", fixture, "-from", "0", "-to", "12"}, nil, &stdout, &stderr)
	if code != 2 || !strings.Contains(stderr.String(), "out of range") {
		t.Fatalf("out-of-range -to → %d (%s)", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-net", fixture, "-from", "0", "-to", "11"}, nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run → %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if arr[11] == temporal.Unreachable {
		if !strings.Contains(out, "no journey from 0 to 11") {
			t.Fatalf("unreachable pair: %s", out)
		}
	} else {
		for _, want := range []string{"foremost", "fewest hops", "fastest", "latest leave"} {
			if !strings.Contains(out, want) {
				t.Fatalf("output missing %q: %s", want, out)
			}
		}
	}
}

// TestAllTargetsTable checks the summary table: header, a row per
// vertex, and the reachable count agreeing with the kernel.
func TestAllTargetsTable(t *testing.T) {
	net := fixtureNet(t)
	arr := net.EarliestArrivals(0)
	reached := 0
	for v := 1; v < net.Graph().N(); v++ {
		if arr[v] != temporal.Unreachable {
			reached++
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-net", fixture, "-from", "0"}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("run → %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "journeys from vertex 0") {
		t.Fatalf("missing table title: %s", out)
	}
	want := fmt.Sprintf("%d/11 targets reachable", reached)
	if !strings.Contains(out, want) {
		t.Fatalf("missing %q in:\n%s", want, out)
	}
}

// TestStdin feeds the network on stdin instead of -net.
func TestStdin(t *testing.T) {
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-from", "1"}, bytes.NewReader(data), &stdout, &stderr); code != 0 {
		t.Fatalf("stdin run → %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "journeys from vertex 1") {
		t.Fatalf("stdin output: %s", stdout.String())
	}
}

// TestErrors covers flag and input failure paths.
func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-net", "testdata/absent.tnet"}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file → %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"-bogus"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag → %d, want 2", code)
	}
	stderr.Reset()
	if code := run(nil, strings.NewReader("not a tnet"), &stdout, &stderr); code != 1 {
		t.Fatalf("garbage stdin → %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"-net", fixture, "-from", "-3"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("negative -from → %d, want 2", code)
	}
}
