// Command journey answers route queries on a saved temporal network (the
// tnet format written by cmd/gen or temporal.Encode): foremost, fewest-hop
// and fastest journeys plus the latest feasible departure.
//
// Usage:
//
//	gen -family grid -n 36 -r 2 > g.tnet
//	journey -net g.tnet -from 0 -to 35
//	journey -net g.tnet -from 0            # table of all targets
//	cat g.tnet | journey -from 3 -to 4     # reads stdin without -net
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/table"
	"repro/internal/temporal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("journey", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netPath = fs.String("net", "", "tnet file (default stdin)")
		from    = fs.Int("from", 0, "source vertex")
		to      = fs.Int("to", -1, "target vertex (-1: summarize all targets)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if *netPath != "" {
		f, err := os.Open(*netPath)
		if err != nil {
			fmt.Fprintf(stderr, "journey: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	net, err := temporal.Decode(in)
	if err != nil {
		fmt.Fprintf(stderr, "journey: %v\n", err)
		return 1
	}
	n := net.Graph().N()
	if *from < 0 || *from >= n || *to >= n {
		fmt.Fprintf(stderr, "journey: vertex out of range [0,%d)\n", n)
		return 2
	}
	fmt.Fprintln(stdout, net)

	if *to >= 0 {
		querySingle(stdout, net, *from, *to)
	} else {
		queryAll(stdout, net, *from)
	}
	return 0
}

func querySingle(w io.Writer, net *temporal.Network, from, to int) {
	fj, ok := net.ForemostJourney(from, to)
	if !ok {
		fmt.Fprintf(w, "no journey from %d to %d\n", from, to)
		return
	}
	sj, _ := net.ShortestJourney(from, to)
	qj, _ := net.FastestJourney(from, to)
	dep := net.LatestDepartures(to)

	fmt.Fprintf(w, "\nforemost     : %v  (arrives %d)\n", fj, fj.ArrivalTime())
	fmt.Fprintf(w, "fewest hops  : %v  (%d hops)\n", sj, len(sj))
	dur := int32(0)
	if len(qj) > 0 {
		dur = qj.ArrivalTime() - qj[0].Label + 1
	}
	fmt.Fprintf(w, "fastest      : %v  (duration %d)\n", qj, dur)
	fmt.Fprintf(w, "latest leave : t=%d\n", dep[from])
}

func queryAll(w io.Writer, net *temporal.Network, from int) {
	arr := net.EarliestArrivals(from)
	hops := net.ShortestHops(from)
	dur := net.FastestDurations(from)

	tb := table.New(fmt.Sprintf("journeys from vertex %d", from),
		"to", "foremost arrival", "min hops", "min duration")
	reached := 0
	for v := 0; v < net.Graph().N(); v++ {
		if v == from {
			continue
		}
		if arr[v] == temporal.Unreachable {
			tb.AddRow(table.I(v), "-", "-", "-")
			continue
		}
		reached++
		tb.AddRow(table.I(v), table.I(int(arr[v])), table.I(int(hops[v])), table.I(int(dur[v])))
	}
	tb.AddNote("%d/%d targets reachable", reached, net.Graph().N()-1)
	fmt.Fprintln(w)
	fmt.Fprint(w, tb.Render())
}
