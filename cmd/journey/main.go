// Command journey answers route queries on a saved temporal network (the
// tnet format written by cmd/gen or temporal.Encode): foremost, fewest-hop
// and fastest journeys plus the latest feasible departure.
//
// Usage:
//
//	gen -family grid -n 36 -r 2 > g.tnet
//	journey -net g.tnet -from 0 -to 35
//	journey -net g.tnet -from 0            # table of all targets
//	cat g.tnet | journey -from 3 -to 4     # reads stdin without -net
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/table"
	"repro/internal/temporal"
)

func main() {
	var (
		netPath = flag.String("net", "", "tnet file (default stdin)")
		from    = flag.Int("from", 0, "source vertex")
		to      = flag.Int("to", -1, "target vertex (-1: summarize all targets)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *netPath != "" {
		f, err := os.Open(*netPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "journey: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	net, err := temporal.Decode(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "journey: %v\n", err)
		os.Exit(1)
	}
	n := net.Graph().N()
	if *from < 0 || *from >= n || *to >= n {
		fmt.Fprintf(os.Stderr, "journey: vertex out of range [0,%d)\n", n)
		os.Exit(2)
	}
	fmt.Println(net)

	if *to >= 0 {
		querySingle(net, *from, *to)
		return
	}
	queryAll(net, *from)
}

func querySingle(net *temporal.Network, from, to int) {
	fj, ok := net.ForemostJourney(from, to)
	if !ok {
		fmt.Printf("no journey from %d to %d\n", from, to)
		return
	}
	sj, _ := net.ShortestJourney(from, to)
	qj, _ := net.FastestJourney(from, to)
	dep := net.LatestDepartures(to)

	fmt.Printf("\nforemost     : %v  (arrives %d)\n", fj, fj.ArrivalTime())
	fmt.Printf("fewest hops  : %v  (%d hops)\n", sj, len(sj))
	dur := int32(0)
	if len(qj) > 0 {
		dur = qj.ArrivalTime() - qj[0].Label + 1
	}
	fmt.Printf("fastest      : %v  (duration %d)\n", qj, dur)
	fmt.Printf("latest leave : t=%d\n", dep[from])
}

func queryAll(net *temporal.Network, from int) {
	arr := net.EarliestArrivals(from)
	hops := net.ShortestHops(from)
	dur := net.FastestDurations(from)

	tb := table.New(fmt.Sprintf("journeys from vertex %d", from),
		"to", "foremost arrival", "min hops", "min duration")
	reached := 0
	for v := 0; v < net.Graph().N(); v++ {
		if v == from {
			continue
		}
		if arr[v] == temporal.Unreachable {
			tb.AddRow(table.I(v), "-", "-", "-")
			continue
		}
		reached++
		tb.AddRow(table.I(v), table.I(int(arr[v])), table.I(int(hops[v])), table.I(int(dur[v])))
	}
	tb.AddNote("%d/%d targets reachable", reached, net.Graph().N()-1)
	fmt.Println()
	fmt.Print(tb.Render())
}
