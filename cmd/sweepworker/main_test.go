package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sweep"
)

// testSweep is a 4-cell sweep, small enough to run inline but with enough
// cells that two workers genuinely interleave.
func testSweep() service.SweepRequest {
	return service.SweepRequest{
		Model: "uniform",
		Seed:  11,
		Grid: []sweep.Axis{
			{Name: "n", Values: []float64{8, 12}},
			{Name: "lifetime", Values: []float64{4, 8}},
		},
		Precision:   sweep.Precision{MinTrials: 8, MaxTrials: 32, Batch: 8},
		Distributed: true,
	}
}

// oracle computes the single-node checkpoint encoding the distributed run
// must reproduce bit-for-bit.
func oracle(t *testing.T, req service.SweepRequest) []byte {
	t.Helper()
	req = req.Canonical()
	src, err := req.Target().Source()
	if err != nil {
		t.Fatal(err)
	}
	s := req.Spec()
	s.Source = src
	cp, err := s.Run(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newWorker(base, sweepID, name string) *worker {
	return &worker{
		base:         base,
		sweepID:      sweepID,
		name:         name,
		maxCells:     2,
		trialWorkers: 1,
		poll:         10 * time.Millisecond,
		client:       &http.Client{Timeout: 10 * time.Second},
	}
}

// TestWorkerRunsSweepToCompletion: one worker drains the whole grid and
// the coordinator's durable checkpoint equals the single-node bytes.
func TestWorkerRunsSweepToCompletion(t *testing.T) {
	ckptDir := t.TempDir()
	m := service.New(service.Options{Workers: 1, LeaseTTL: time.Minute, CheckpointDir: ckptDir})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	req := testSweep()
	job, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}

	w := newWorker(srv.URL, job.ID(), "w1")
	if err := w.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if job.State() != service.StateDone {
		t.Fatalf("job %s after worker drained it", job.State())
	}

	want := oracle(t, req)
	got, err := os.ReadFile(filepath.Join(ckptDir, job.ID()+".ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed checkpoint differs from single-node:\n%s\nvs\n%s", got, want)
	}
}

// TestTwoWorkersOneDiesMidRun is the headline acceptance scenario: two
// workers share the grid, one dies after its first completed cell while
// still holding a lease, and the survivor — after the straggler lease
// expires — finishes the sweep bit-identically to a single-node run.
func TestTwoWorkersOneDiesMidRun(t *testing.T) {
	ckptDir := t.TempDir()
	m := service.New(service.Options{
		Workers:       1,
		LeaseTTL:      300 * time.Millisecond,
		CheckpointDir: ckptDir,
	})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	req := testSweep()
	job, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1 leases two cells but "dies" (context cancelled, no clean
	// handoff) right after reporting the first — its second lease is left
	// dangling until the TTL reclaims it.
	dieCtx, die := context.WithCancel(context.Background())
	w1 := newWorker(srv.URL, job.ID(), "w1")
	w1.afterCell = func(int) { die() }
	if err := w1.run(dieCtx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dying worker returned %v, want context.Canceled", err)
	}
	if job.State() != service.StateRunning {
		t.Fatalf("job %s after partial worker, want running", job.State())
	}

	w2 := newWorker(srv.URL, job.ID(), "w2")
	done := make(chan error, 1)
	go func() { done <- w2.run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("surviving worker did not finish the sweep")
	}
	if job.State() != service.StateDone {
		t.Fatalf("job %s after surviving worker, want done", job.State())
	}
	if v := job.View(); v.Shard.Expired == 0 {
		t.Fatal("no lease expired — the dead worker's lease was never reclaimed")
	}

	want := oracle(t, req)
	got, err := os.ReadFile(filepath.Join(ckptDir, job.ID()+".ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("checkpoint after worker death differs from single-node:\n%s\nvs\n%s", got, want)
	}

	// The HTTP checkpoint view serves the same bytes.
	resp, err := http.Get(srv.URL + "/sweeps/" + job.ID() + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("GET /sweeps/{id}/checkpoint differs from single-node bytes")
	}
}

// TestWorkerStopsOnCancelledSweep: cancelling the sweep turns the worker
// away cleanly (exit 0 path), whether it is polling or mid-report.
func TestWorkerStopsOnCancelledSweep(t *testing.T) {
	m := service.New(service.Options{Workers: 1, LeaseTTL: time.Minute})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	job, err := m.SubmitSweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	w := newWorker(srv.URL, job.ID(), "w1")
	if err := w.run(context.Background()); err != nil {
		t.Fatalf("worker on cancelled sweep returned %v, want clean exit", err)
	}
}

// TestWorkerRejectsSpecMismatch: a coordinator whose fingerprint does not
// match what the worker computes locally is version skew — fatal, not
// retried.
func TestWorkerRejectsSpecMismatch(t *testing.T) {
	req := testSweep()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps/x/lease", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.Write([]byte(`{"sweep_id":"x","state":"running","spec":"kind=proportion|DIFFERENT","request":` +
			encodeJSON(t, req) + `,"leases":[{"lease_id":1,"index":0,"values":{"n":8},"seed":1,"ttl_ms":60000}]}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w := newWorker(srv.URL, "x", "w1")
	err := w.run(context.Background())
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("fingerprint mismatch")) {
		t.Fatalf("worker accepted a mismatched spec: %v", err)
	}
}

// TestWorkerStitchesTrace runs a full distributed sweep in-process and
// checks the trace that falls out: the worker adopts the coordinator's
// sweep-root context from the lease response, every cell gets a
// worker.cell span parented under the root, and each /cells report's
// server span parents under its cell span — one connected tree across
// both halves of the protocol.
func TestWorkerStitchesTrace(t *testing.T) {
	m := service.New(service.Options{Workers: 1, LeaseTTL: time.Minute})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	job, err := m.SubmitSweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	w := newWorker(srv.URL, job.ID(), "w1")
	if err := w.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !w.sweepCtx.Valid() {
		t.Fatal("worker never adopted the coordinator's trace context")
	}

	spans := obs.DefaultTracer().Filtered(obs.TraceFilter{Trace: w.sweepCtx.Trace})
	cells := map[uint64]bool{} // worker.cell span ids
	var reports int
	for _, s := range spans {
		switch s.Name {
		case "worker.cell":
			if s.Parent != w.sweepCtx.Span {
				t.Fatalf("worker.cell parent %d, want sweep root %d", s.Parent, w.sweepCtx.Span)
			}
			attrs := map[string]string{}
			for _, a := range s.Attrs[:s.NAttrs] {
				attrs[a.Key] = a.Value()
			}
			if attrs["worker"] != "w1" || attrs["cell"] == "" || attrs["lease"] == "" {
				t.Fatalf("worker.cell attrs %v", attrs)
			}
			cells[s.ID] = true
		}
	}
	if len(cells) != 4 {
		t.Fatalf("%d worker.cell spans, want one per cell (4)", len(cells))
	}
	for _, s := range spans {
		if s.Name == "http.server" && cells[s.Parent] {
			reports++
		}
	}
	if reports != 4 {
		t.Fatalf("%d /cells server spans parented under cell spans, want 4", reports)
	}

	// The dump the -trace-out flag writes decodes and carries the trace.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTraceDump(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Proc == "" || dump.BaseUnixNS == 0 {
		t.Fatalf("dump missing process anchor: %+v", dump)
	}
	want := w.sweepCtx.Trace.String()
	found := false
	for _, s := range dump.Spans {
		if s.Trace == want {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("trace %s absent from -trace-out dump", want)
	}
}

// TestNextBackoffBounds pins the decorrelated-jitter envelope: every step
// stays in [base, cap], and the reachable ceiling actually grows toward
// the cap rather than sticking at base.
func TestNextBackoffBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	sawAboveDouble := false
	for trial := 0; trial < 200; trial++ {
		prev := base
		for step := 0; step < 8; step++ {
			next := nextBackoff(prev, base)
			if next < base || next > backoffCap {
				t.Fatalf("backoff %v escaped [%v, %v]", next, base, backoffCap)
			}
			if next > 2*base {
				sawAboveDouble = true
			}
			prev = next
		}
	}
	if !sawAboveDouble {
		t.Fatal("backoff never exceeded 2×base across 200 trials — jitter looks broken")
	}
	if got := nextBackoff(backoffCap, backoffCap); got != backoffCap {
		t.Fatalf("degenerate cap==base case: %v, want %v", got, backoffCap)
	}
}

func encodeJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
