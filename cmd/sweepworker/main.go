// Command sweepworker is the pull side of distributed sweep execution: it
// leases grid cells from a coordinator (cmd/serve with a sweep submitted
// as "distributed": true), runs each cell through the exact engine a
// single-node sweep uses, and reports the results back.
//
//	sweepworker -coordinator http://host:8080 -sweep j3 [-worker name]
//
// Workers need no out-of-band configuration: the lease response carries
// the full sweep request, and the worker recomputes the sweep's spec
// fingerprint locally, refusing to run if it disagrees with the
// coordinator's (version skew). Because every cell is a pure function of
// (spec, cell seed), any number of workers — joining, dying, duplicating
// work — produce a coordinator checkpoint bit-identical to a single-node
// run.
//
// Fault model: transport errors and 5xx responses are retried with
// decorrelated-jitter backoff (so a worker fleet that lost its
// coordinator desynchronises instead of thundering back); a lost worker's
// leases expire at the coordinator and its cells are re-leased; a
// duplicate completion (the worker was slow, not dead) is acknowledged as
// "duplicate" and is harmless. The worker exits 0 when the sweep reaches
// a terminal state.
//
// Observability: the lease response carries the coordinator's sweep-root
// trace context; each cell runs under a worker.cell span parented to it
// and every POST carries a traceparent header, so cmd/traceview can
// stitch the coordinator's /debug/trace dump and this worker's -trace-out
// file into one cross-process timeline.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepworker: ")

	var w worker
	flag.StringVar(&w.base, "coordinator", "http://localhost:8080", "coordinator base URL (cmd/serve)")
	flag.StringVar(&w.sweepID, "sweep", "", "sweep job id to work on (required)")
	flag.StringVar(&w.name, "worker", "", "worker name (default host-pid)")
	flag.IntVar(&w.maxCells, "max-cells", 1, "cells to lease per request")
	flag.IntVar(&w.trialWorkers, "trial-workers", 0, "trial parallelism per cell (0 = GOMAXPROCS; never changes results)")
	flag.DurationVar(&w.poll, "poll", 500*time.Millisecond, "poll interval when no cells are available, and base retry backoff")
	flag.DurationVar(&w.cellDelay, "cell-delay", 0, "testing: sleep this long after computing each cell before reporting it")
	traceOut := flag.String("trace-out", "", "write this worker's span ring as a JSON trace dump to this file on exit (merge with cmd/traceview)")
	verbose := flag.Bool("v", false, "log each lease and completion")
	flag.Parse()

	if w.sweepID == "" {
		log.Fatal("-sweep is required")
	}
	if w.name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		w.name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w.client = &http.Client{Timeout: 30 * time.Second}
	if *verbose {
		w.logf = log.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := w.run(ctx)
	if *traceOut != "" {
		if werr := writeTraceDump(*traceOut); werr != nil {
			log.Printf("trace dump: %v", werr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// writeTraceDump persists this process's span ring so an operator (or the
// CI smoke test) can stitch it against the coordinator's /debug/trace dump
// with cmd/traceview.
func writeTraceDump(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.DefaultTracer().DumpJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// worker is one lease-pulling execution loop. All fields are set before
// run; the sweep engine configuration (src, kind, prec) is built from the
// first lease response and the spec fingerprint is re-verified on every
// response after that.
type worker struct {
	base         string
	sweepID      string
	name         string
	maxCells     int
	trialWorkers int
	poll         time.Duration
	cellDelay    time.Duration
	client       *http.Client
	logf         func(string, ...any) // nil = quiet

	// afterCell, when non-nil, runs after each completed-cell report —
	// a test hook for simulating a worker dying mid-run.
	afterCell func(index int)

	src  sweep.CellSource
	kind sweep.Kind
	prec sweep.Precision
	spec string

	// sweepCtx is the coordinator's sweep-root trace context, parsed from
	// the first lease response that carries one. Per-cell spans parent to
	// it, and every POST injects the current span's context so the
	// coordinator's server spans stitch under this worker's. Written once
	// in prepare (before the heartbeat goroutine exists), read-only after.
	sweepCtx obs.SpanContext
}

// errSweepOver signals a clean stop: the sweep reached a terminal state
// (done or cancelled) while we were working.
var errSweepOver = errors.New("sweep reached a terminal state")

func (w *worker) debugf(format string, args ...any) {
	if w.logf != nil {
		w.logf(format, args...)
	}
}

// run pulls leases until the sweep is terminal or ctx is cancelled.
func (w *worker) run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp service.LeaseResponse
		err := w.post(ctx, "/lease", service.LeaseRequest{Worker: w.name, Max: w.maxCells}, &resp)
		if err != nil {
			return fmt.Errorf("lease: %w", err)
		}
		if resp.State.Terminal() {
			w.debugf("sweep %s is %s (%d/%d cells); exiting", w.sweepID, resp.State, resp.CellsDone, resp.CellsTotal)
			return nil
		}
		if err := w.prepare(&resp); err != nil {
			return err
		}
		if len(resp.Leases) == 0 {
			// Every remaining cell is leased elsewhere; wait for progress
			// (or a straggler expiry) and ask again.
			if err := sleepCtx(ctx, w.poll); err != nil {
				return err
			}
			continue
		}
		if err := w.runLeases(ctx, &resp); err != nil {
			if errors.Is(err, errSweepOver) {
				w.debugf("sweep %s finished elsewhere; exiting", w.sweepID)
				return nil
			}
			return err
		}
	}
}

// prepare builds the cell execution engine from the coordinator's sweep
// request and verifies the spec fingerprint — a worker from a different
// build would silently compute different bits, so fingerprint skew is
// fatal, never retried.
func (w *worker) prepare(resp *service.LeaseResponse) error {
	if resp.Request == nil {
		return fmt.Errorf("coordinator sent no sweep request for %s", w.sweepID)
	}
	req := resp.Request.Canonical()
	if got := req.Spec().SpecKey(); got != resp.Spec {
		return fmt.Errorf("spec fingerprint mismatch (version skew?):\n  coordinator: %s\n  local:       %s", resp.Spec, got)
	}
	if !w.sweepCtx.Valid() {
		if sc, ok := obs.ParseTraceparent(resp.Trace); ok {
			w.sweepCtx = sc
		}
	}
	if w.src != nil {
		return nil // engine already built; fingerprint re-verified above
	}
	src, err := req.Target().Source()
	if err != nil {
		return err
	}
	w.src = src
	w.kind = req.Target().Kind()
	w.prec = req.Precision
	w.spec = resp.Spec
	return nil
}

// runLeases executes one granted batch, heartbeating the whole time so
// slow cells are not re-leased out from under us.
func (w *worker) runLeases(ctx context.Context, resp *service.LeaseResponse) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	ttl := time.Duration(resp.Leases[0].TTLMS) * time.Millisecond
	go w.heartbeatLoop(hbCtx, stopHB, ttl)

	for _, l := range resp.Leases {
		if err := hbCtx.Err(); err != nil {
			if ctx.Err() == nil {
				return errSweepOver // heartbeat saw a terminal state
			}
			return err
		}
		if err := w.runCell(hbCtx, l); err != nil {
			return err
		}
	}
	return nil
}

// runCell computes one cell exactly as Sweep.Run would — same Adaptive
// configuration, same batched source, same per-cell seed — and reports it.
// The whole cell runs under a worker.cell span parented to the
// coordinator's sweep root, so a merged trace shows which worker ran which
// cell and how long the compute took relative to the report round-trip.
func (w *worker) runCell(ctx context.Context, l service.CellLease) (err error) {
	span := obs.StartRemoteSpan("worker.cell", w.sweepCtx)
	span.SetAttr("worker", w.name)
	span.SetAttrInt("cell", int64(l.Index))
	span.SetAttrInt("lease", l.LeaseID)
	defer func() {
		if err != nil {
			span.SetError(err)
		}
		span.End()
	}()

	w.debugf("cell %d (lease %d): %v", l.Index, l.LeaseID, l.Values)
	a := sweep.Adaptive{Seed: l.Seed, Workers: w.trialWorkers, Kind: w.kind, Prec: w.prec}
	est, err := a.EstimateSource(ctx, w.src(l.Values, l.Seed, w.trialWorkers, nil))
	if err != nil {
		return fmt.Errorf("cell %d: %w", l.Index, err)
	}
	if w.cellDelay > 0 {
		// Failure-injection window: a test or smoke script kills the
		// process here to leave a computed-but-unreported cell behind an
		// unexpired lease.
		if err := sleepCtx(ctx, w.cellDelay); err != nil {
			return err
		}
	}
	var cr service.CompleteResponse
	err = w.postTraced(ctx, span.Context(), "/cells", service.CompleteRequest{
		Worker: w.name, LeaseID: l.LeaseID,
		Cell: sweep.Cell{Index: l.Index, Values: l.Values, Est: est},
	}, &cr)
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.code == http.StatusConflict {
			// The board closed (cancel) or finished under us.
			return errSweepOver
		}
		return fmt.Errorf("report cell %d: %w", l.Index, err)
	}
	w.debugf("cell %d %s (%d cells done, sweep done=%v)", l.Index, cr.Status, cr.CellsDone, cr.Done)
	if w.afterCell != nil {
		w.afterCell(l.Index)
	}
	return nil
}

// heartbeatLoop extends this worker's leases at TTL/3 until ctx ends,
// cancelling the batch if the sweep goes terminal (e.g. cancelled).
func (w *worker) heartbeatLoop(ctx context.Context, cancel context.CancelFunc, ttl time.Duration) {
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var hb service.HeartbeatResponse
			if err := w.post(ctx, "/heartbeat", service.HeartbeatRequest{Worker: w.name}, &hb); err == nil && hb.State.Terminal() {
				cancel()
				return
			}
		}
	}
}

// apiError is a non-retryable coordinator rejection (4xx).
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return fmt.Sprintf("coordinator: %d %s", e.code, e.msg) }

// post sends one JSON request to the sweep's sub-path under the sweep's
// root trace context (no header before the first lease response arrives).
func (w *worker) post(ctx context.Context, sub string, body, out any) error {
	return w.postTraced(ctx, w.sweepCtx, sub, body, out)
}

// postTraced is post with an explicit trace context — runCell passes its
// per-cell span so the coordinator's server span for the report parents
// under it. Transport errors and 5xx are retried with decorrelated-jitter
// backoff; 4xx returns *apiError immediately — those are protocol
// outcomes, not transients.
func (w *worker) postTraced(ctx context.Context, sc obs.SpanContext, sub string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	url := w.base + "/sweeps/" + w.sweepID + sub
	base := w.poll
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	backoff := base
	var last error
	for attempt := 0; attempt < 6; attempt++ {
		if attempt > 0 {
			w.debugf("retrying %s after %v: %v", sub, backoff, last)
			if err := sleepCtx(ctx, backoff); err != nil {
				return err
			}
			backoff = nextBackoff(backoff, base)
		}
		req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		obs.Inject(sc, req.Header)
		resp, err := w.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			last = err
			continue
		}
		rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode >= 500 {
			last = fmt.Errorf("coordinator: %d %s", resp.StatusCode, errBody(rb))
			continue
		}
		if resp.StatusCode >= 400 {
			return &apiError{code: resp.StatusCode, msg: errBody(rb)}
		}
		return json.Unmarshal(rb, out)
	}
	return fmt.Errorf("giving up on %s: %w", sub, last)
}

// backoffCap bounds the retry sleep regardless of how many attempts have
// failed.
const backoffCap = 5 * time.Second

// nextBackoff implements decorrelated jitter ("full jitter" with memory):
// sleep uniformly in [base, min(cap, prev*3)]. Unlike deterministic
// doubling, a fleet of workers that all lost the coordinator at the same
// instant desynchronises after one round instead of thundering back in
// lockstep. The randomness is the runtime's (math/rand/v2) — retry timing
// never touches internal/rng trial streams, so backoff cannot perturb
// results.
func nextBackoff(prev, base time.Duration) time.Duration {
	hi := prev * 3
	if hi > backoffCap {
		hi = backoffCap
	}
	if hi <= base {
		return base
	}
	return base + rand.N(hi-base)
}

// errBody extracts the handler's {"error": "..."} message, falling back to
// the raw body.
func errBody(b []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(b))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
