// Command traceview merges trace dumps from several processes — the
// coordinator's GET /debug/trace and workers' -trace-out files — into
// per-trace timelines. Spans sharing a TraceID are stitched into one tree
// regardless of which process recorded them; each dump's BaseUnixNS
// anchors its monotonic span clocks onto the shared wall-clock axis, and
// the chain of spans that bounded each trace's wall time is marked '*'
// (the critical path).
//
//	traceview http://localhost:8080/debug/trace worker-a.json worker-b.json
//	traceview -trace 4bf92f3577b34da6a3ce929d0e0e4736 coord.json
//	traceview -name sweep.coordinate coord.json worker.json
//
// Arguments starting with http:// or https:// are fetched; everything
// else is read as a file ("-" for stdin). Each source must be one
// obs.TraceDump JSON document.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run is main without the process exit, for tests: it returns 0 when the
// filters matched at least one trace and 2 when they matched none (like
// grep, so smoke scripts can assert a stitched trace exists).
func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	traceID := fs.String("trace", "", "only this 32-hex-digit trace id")
	name := fs.String("name", "", "only traces containing a span with this exact name")
	procs := fs.Bool("procs", false, "list source processes and span counts before the timelines")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if fs.NArg() == 0 {
		return 1, fmt.Errorf("no dump sources; usage: traceview [-trace id] [-name span] <url-or-file>...")
	}
	if *traceID != "" {
		if _, err := obs.ParseTraceID(*traceID); err != nil {
			return 1, err
		}
	}

	var spans []obs.FlatSpan
	for _, src := range fs.Args() {
		dump, err := readDump(src, stdin)
		if err != nil {
			return 1, fmt.Errorf("%s: %w", src, err)
		}
		if *procs {
			fmt.Fprintf(stdout, "proc %s: %d spans (ring %d/%d) from %s\n",
				dump.Proc, len(dump.Spans), dump.Recorded, dump.Capacity, src)
		}
		spans = append(spans, dump.Flatten()...)
	}

	trees := assembleFiltered(spans, *traceID, *name)
	if err := obs.WriteTraceText(stdout, trees); err != nil {
		return 1, err
	}
	if len(trees) == 0 {
		fmt.Fprintln(stdout, "no traces matched")
		return 2, nil
	}
	return 0, nil
}

// assembleFiltered builds trace trees and keeps those matching the
// filters: an exact trace id, and/or the presence of a span with the
// given name anywhere in the tree.
func assembleFiltered(spans []obs.FlatSpan, traceID, name string) []obs.TraceTree {
	trees := obs.AssembleTraces(spans)
	out := trees[:0]
	for _, tree := range trees {
		if traceID != "" && tree.Trace != traceID {
			continue
		}
		if name != "" && !treeHasName(tree, name) {
			continue
		}
		out = append(out, tree)
	}
	return out
}

func treeHasName(tree obs.TraceTree, name string) bool {
	var walk func(n *obs.TraceNode) bool
	walk = func(n *obs.TraceNode) bool {
		if n.Span.Name == name {
			return true
		}
		for _, c := range n.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	for _, r := range tree.Roots {
		if walk(r) {
			return true
		}
	}
	return false
}

// readDump loads one obs.TraceDump from a URL, a file, or stdin ("-").
func readDump(src string, stdin io.Reader) (obs.TraceDump, error) {
	var (
		r   io.ReadCloser
		err error
	)
	switch {
	case src == "-":
		r = io.NopCloser(stdin)
	case len(src) > 7 && (src[:7] == "http://" || (len(src) > 8 && src[:8] == "https://")):
		client := &http.Client{Timeout: 30 * time.Second}
		resp, herr := client.Get(src)
		if herr != nil {
			return obs.TraceDump{}, herr
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
			resp.Body.Close()
			return obs.TraceDump{}, fmt.Errorf("GET: %d %s", resp.StatusCode, body)
		}
		r = resp.Body
	default:
		r, err = os.Open(src)
		if err != nil {
			return obs.TraceDump{}, err
		}
	}
	defer r.Close()
	var dump obs.TraceDump
	if err := json.NewDecoder(io.LimitReader(r, 64<<20)).Decode(&dump); err != nil {
		return obs.TraceDump{}, err
	}
	return dump, nil
}
