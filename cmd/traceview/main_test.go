package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// trace is the id shared by the two fixture processes.
const traceHex = "0102030400000000000000000000000f"

// coordDump mimics a coordinator /debug/trace response: the sweep root
// and the server span for a worker's report.
func coordDump() obs.TraceDump {
	return obs.TraceDump{
		Proc:       "coord-1",
		BaseUnixNS: 1_000_000,
		Capacity:   4096,
		Recorded:   2,
		Spans: []obs.SpanJSON{
			{Trace: traceHex, ID: 1, Name: "sweep.coordinate", StartNS: 0, DurNS: 9_000,
				Attrs: map[string]string{"sweep": "j1"}},
			{Trace: traceHex, ID: 2, Parent: 7, Name: "http.server", StartNS: 6_000, DurNS: 500},
		},
	}
}

// workerDump mimics a worker -trace-out file: one cell span parented to
// the coordinator's root, recorded on a different monotonic clock.
func workerDump() obs.TraceDump {
	return obs.TraceDump{
		Proc:       "worker-2",
		BaseUnixNS: 1_000_500,
		Capacity:   4096,
		Recorded:   1,
		Spans: []obs.SpanJSON{
			{Trace: traceHex, ID: 7, Parent: 1, Name: "worker.cell", StartNS: 1_000, DurNS: 7_000,
				Attrs: map[string]string{"worker": "w1", "cell": "3"}},
		},
	}
}

func writeDump(t *testing.T, dump obs.TraceDump) string {
	t.Helper()
	b, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), dump.Proc+".json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergesFileAndHTTPSources is the command's contract: a dump served
// over HTTP (the coordinator) and a dump file (the worker) stitch into one
// tree, cross-process parent links intact and the critical path marked.
func TestMergesFileAndHTTPSources(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(coordDump())
	}))
	defer srv.Close()
	workerPath := writeDump(t, workerDump())

	var out bytes.Buffer
	code, err := run([]string{"-procs", srv.URL, workerPath}, nil, &out)
	if err != nil || code != 0 {
		t.Fatalf("run → %d, %v\n%s", code, err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"proc coord-1: 2 spans",
		"proc worker-2: 1 spans",
		"trace " + traceHex,
		"sweep.coordinate",
		"worker.cell",
		"[worker-2]",
		"worker=w1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	// Stitching: worker.cell is indented under sweep.coordinate, and
	// http.server (child of the worker span) one level deeper.
	lines := strings.Split(text, "\n")
	depth := func(name string) int {
		for _, l := range lines {
			if i := strings.Index(l, name); i >= 0 && strings.Contains(l, "  "+name) {
				return i
			}
		}
		t.Fatalf("span %s not in output:\n%s", name, text)
		return -1
	}
	if !(depth("sweep.coordinate") < depth("worker.cell") && depth("worker.cell") < depth("http.server")) {
		t.Fatalf("tree not stitched across processes:\n%s", text)
	}
	// The whole chain bounds the trace, so every span is critical.
	for _, l := range lines {
		if strings.Contains(l, "worker.cell") && !strings.HasPrefix(l, "*") {
			t.Fatalf("worker.cell not on critical path:\n%s", text)
		}
	}
}

// TestFilters pins the grep-style exit code: 0 when a filter matches,
// 2 when nothing does, 1 on a bad trace id.
func TestFilters(t *testing.T) {
	coordPath := writeDump(t, coordDump())

	var out bytes.Buffer
	if code, err := run([]string{"-name", "sweep.coordinate", coordPath}, nil, &out); err != nil || code != 0 {
		t.Fatalf("name filter → %d, %v", code, err)
	}
	out.Reset()
	if code, err := run([]string{"-trace", traceHex, coordPath}, nil, &out); err != nil || code != 0 {
		t.Fatalf("trace filter → %d, %v", code, err)
	}
	out.Reset()
	if code, err := run([]string{"-name", "no.such.span", coordPath}, nil, &out); err != nil || code != 2 {
		t.Fatalf("unmatched filter → %d, %v (want 2)", code, err)
	}
	if !strings.Contains(out.String(), "no traces matched") {
		t.Fatalf("unmatched output %q", out.String())
	}
	if code, _ := run([]string{"-trace", "NOT-HEX", coordPath}, nil, &out); code != 1 {
		t.Fatalf("bad trace id → %d, want 1", code)
	}
	if code, _ := run([]string{}, nil, &out); code != 1 {
		t.Fatal("no sources should be an error")
	}
}

// TestReadsStdin covers the "-" source.
func TestReadsStdin(t *testing.T) {
	b, err := json.Marshal(workerDump())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run([]string{"-"}, bytes.NewReader(b), &out)
	if err != nil || code != 0 {
		t.Fatalf("stdin run → %d, %v", code, err)
	}
	if !strings.Contains(out.String(), "worker.cell") {
		t.Fatalf("stdin output %q", out.String())
	}
}
