// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments                  # run everything at full scale
//	experiments -id E1,E5        # run selected experiments
//	experiments -quick           # bench/CI scale
//	experiments -format markdown # markdown tables (for EXPERIMENTS.md)
//	experiments -format csv      # machine-readable tables
//	experiments -seed 7          # change the Monte-Carlo base seed
//
// Every number printed is a deterministic function of the seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		ids    = flag.String("id", "", "comma-separated experiment ids (default: all)")
		seed   = flag.Uint64("seed", 2014, "Monte-Carlo base seed")
		quick  = flag.Bool("quick", false, "reduced sizes and trial counts")
		format = flag.String("format", "ascii", "output format: ascii, markdown or csv")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Anchor)
		}
		return
	}

	selected := experiments.All()
	if *ids != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*ids, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		res := e.Run(cfg)
		elapsed := time.Since(start).Round(time.Millisecond)
		switch *format {
		case "markdown":
			fmt.Printf("## %s — %s\n\n*Paper anchor: %s. Wall time: %v.*\n\n", e.ID, e.Title, e.Anchor, elapsed)
			for _, tb := range res.Tables {
				fmt.Println(tb.Markdown())
			}
			for _, fig := range res.Figures {
				fmt.Printf("```\n%s```\n\n", fig)
			}
		case "csv":
			for _, tb := range res.Tables {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			}
		case "ascii":
			fmt.Printf("=== %s — %s (%s; %v) ===\n\n", e.ID, e.Title, e.Anchor, elapsed)
			for _, tb := range res.Tables {
				fmt.Println(tb.Render())
			}
			for _, fig := range res.Figures {
				fmt.Println(fig)
			}
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
