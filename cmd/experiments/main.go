// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments                  # run everything at full scale
//	experiments -id E1,E5        # run selected experiments
//	experiments -quick           # bench/CI scale
//	experiments -format markdown # markdown tables
//	experiments -format csv      # machine-readable tables
//	experiments -seed 7          # change the Monte-Carlo base seed
//	experiments -id E16 -model pt-burst          # single schedule in E16
//	experiments -id E15 -mp pi=0.05,runlen=6     # availability-model overrides
//	experiments -workers 1       # serial trials (same numbers, see sim)
//	experiments -metrics-dump    # Prometheus-text metrics to stderr at exit
//
// Every number printed is a deterministic function of the seed and the
// model flags; -workers only changes scheduling, never results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/avail"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		ids     = flag.String("id", "", "comma-separated experiment ids (default: all)")
		seed    = flag.Uint64("seed", 2014, "Monte-Carlo base seed")
		quick   = flag.Bool("quick", false, "reduced sizes and trial counts")
		format  = flag.String("format", "ascii", "output format: ascii, markdown or csv")
		list    = flag.Bool("list", false, "list experiments and exit")
		model   = flag.String("model", "", "availability model for the model-aware drivers (E15–E17)")
		mp      = flag.String("mp", "", "availability-model parameter overrides, name=value[,name=value…]")
		workers = flag.Int("workers", 0, "trial parallelism; 0 means GOMAXPROCS (results identical either way)")

		metricsDump = flag.Bool("metrics-dump", false, "dump process metrics (Prometheus text) to stderr at exit")
	)
	flag.Parse()

	knobs, err := avail.ParseKnobs(*mp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if *model != "" {
		if _, ok := avail.Lookup(*model); !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown model %q (have %s)\n",
				*model, strings.Join(avail.Names(), ", "))
			os.Exit(2)
		}
	}
	// Typos in -mp must fail loudly, not silently run the defaults.
	if err := avail.ValidateKnobs(*model, knobs); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Anchor)
		}
		return
	}

	selected := experiments.All()
	if *ids != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*ids, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers, Model: *model, MP: knobs}
	for _, e := range selected {
		start := time.Now()
		res := e.Run(cfg)
		elapsed := time.Since(start).Round(time.Millisecond)
		switch *format {
		case "markdown":
			fmt.Printf("## %s — %s\n\n*Paper anchor: %s. Wall time: %v.*\n\n", e.ID, e.Title, e.Anchor, elapsed)
			for _, tb := range res.Tables {
				fmt.Println(tb.Markdown())
			}
			for _, fig := range res.Figures {
				fmt.Printf("```\n%s```\n\n", fig)
			}
		case "csv":
			for _, tb := range res.Tables {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			}
		case "ascii":
			fmt.Printf("=== %s — %s (%s; %v) ===\n\n", e.ID, e.Title, e.Anchor, elapsed)
			for _, tb := range res.Tables {
				fmt.Println(tb.Render())
			}
			for _, fig := range res.Figures {
				fmt.Println(fig)
			}
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if *metricsDump {
		obs.Default().WritePrometheus(os.Stderr)
	}
}
