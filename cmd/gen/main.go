// Command gen generates random temporal network instances and writes them
// in the tnet text format (readable back with temporal.Decode), so
// experiments can be frozen, shared and replayed.
//
// Label assignment goes through the availability-model registry
// (internal/avail): -model picks any registered model and -mp sets its
// parameters. The legacy -law/-lawparam flags remain as aliases for the
// i.i.d. models. Scenario models (geometric) build their own support graph
// on n vertices and ignore -family.
//
// Usage:
//
//	gen -family clique -n 64 > clique64.tnet
//	gen -family star -n 128 -r 8 -seed 7
//	gen -family gnp -n 200 -p 0.05 -lifetime 400
//	gen -family grid -n 36 -law geom -lawparam 0.05
//	gen -model markov -mp pi=0.05,runlen=6 -family path -n 50
//	gen -model pt-burst -mp start=0.3,width=0.1 -n 64
//	gen -model geometric -mp radius=0.18,step=0.05 -n 100
//	gen -list-models
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/avail"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	var (
		family     = flag.String("family", "clique", strings.Join(graph.FamilyNames(), ", "))
		n          = flag.Int("n", 64, "requested size")
		p          = flag.Float64("p", 0, "edge probability for gnp (default 2·ln n/n)")
		deg        = flag.Int("deg", 4, "degree for regular")
		lifetime   = flag.Int("lifetime", 0, "lifetime a (default n)")
		r          = flag.Int("r", 1, "labels per edge for the i.i.d. models")
		model      = flag.String("model", "", "availability model (see -list-models); overrides -law")
		mp         = flag.String("mp", "", "model parameters, name=value[,name=value…]")
		law        = flag.String("law", "uniform", "legacy i.i.d. label law: uniform, geom, binom, zipf")
		lawParam   = flag.Float64("lawparam", 0, "legacy law parameter (geom p, binom p, zipf s)")
		seed       = flag.Uint64("seed", 1, "generation seed")
		listModels = flag.Bool("list-models", false, "list availability models and exit")
	)
	flag.Parse()

	if *listModels {
		for _, b := range avail.Builders() {
			kind := "edge"
			if b.Scenario {
				kind = "scenario"
			}
			fmt.Printf("%-12s %-8s %s\n", b.Name, kind, b.Doc)
			for _, k := range b.Knobs {
				fmt.Printf("             -mp %s=… (default %g): %s\n", k.Name, k.Default, k.Doc)
			}
		}
		return
	}

	knobs, err := avail.ParseKnobs(*mp)
	if err != nil {
		fail("%v", err)
	}
	name := *model
	if name == "" {
		// Legacy path: the law names are registry names; -lawparam maps to
		// the law's single knob.
		name = *law
		if *lawParam != 0 {
			if knobs == nil {
				knobs = map[string]float64{}
			}
			switch *law {
			case "geom", "binom":
				knobs["p"] = *lawParam
			case "zipf":
				knobs["s"] = *lawParam
			default:
				fail("gen: -lawparam is meaningless for law %q", *law)
			}
		}
	}

	b, ok := avail.Lookup(name)
	if !ok {
		fail("gen: unknown model %q (have %s)", name, strings.Join(avail.Names(), ", "))
	}

	// The graph comes first: the default lifetime is the *realized* vertex
	// count g.N() — families like hypercube and grid round the requested
	// -n — and scenario models build their own support graph, so they get
	// an edgeless n-vertex placeholder instead of a discarded (and, for
	// random families, stream-consuming) -family substrate.
	stream := rng.New(*seed)
	var g *graph.Graph
	fam := *family
	if b.Scenario {
		g = graph.NewBuilder(*n, false).Build()
		fam = "(scenario)"
	} else {
		g, err = graph.Family(*family, *n, graph.FamilyOpts{P: *p, Deg: *deg}, stream)
		if err != nil {
			fail("gen: %v (use one of %s)", err, strings.Join(graph.FamilyNames(), ", "))
		}
	}

	a := *lifetime
	if a == 0 {
		a = g.N()
	}
	m, err := avail.Build(name, avail.Params{Lifetime: a, R: *r, P: knobs})
	if err != nil {
		fail("gen: %v", err)
	}

	net := avail.Network(m, g, stream)
	fmt.Printf("# family=%s n=%d m=%d lifetime=%d r=%d model=%s seed=%d\n",
		fam, net.Graph().N(), net.Graph().M(), a, *r, m.Name(), *seed)
	if err := net.Encode(os.Stdout); err != nil {
		fail("gen: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
