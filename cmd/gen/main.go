// Command gen generates random temporal network instances and writes them
// in the tnet text format (readable back with temporal.Decode), so
// experiments can be frozen, shared and replayed.
//
// Usage:
//
//	gen -family clique -n 64 > clique64.tnet
//	gen -family star -n 128 -r 8 -seed 7
//	gen -family gnp -n 200 -p 0.05 -lifetime 400
//	gen -family grid -n 36 -law geom -lawparam 0.05
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/assign"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/temporal"
)

func main() {
	var (
		family   = flag.String("family", "clique", "clique, dclique, star, path, cycle, grid, hypercube, bintree, tree, gnp, regular")
		n        = flag.Int("n", 64, "requested size")
		p        = flag.Float64("p", 0, "edge probability for gnp (default 2·ln n/n)")
		deg      = flag.Int("deg", 4, "degree for regular")
		lifetime = flag.Int("lifetime", 0, "lifetime a (default n)")
		r        = flag.Int("r", 1, "labels per edge")
		law      = flag.String("law", "uniform", "label law: uniform, geom, binom, zipf")
		lawParam = flag.Float64("lawparam", 0, "law parameter (geom p, binom q, zipf s)")
		seed     = flag.Uint64("seed", 1, "generation seed")
	)
	flag.Parse()

	stream := rng.New(*seed)
	var g *graph.Graph
	switch *family {
	case "clique":
		g = graph.Clique(*n, false)
	case "dclique":
		g = graph.Clique(*n, true)
	case "star":
		g = graph.Star(*n)
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "grid":
		g = graph.Grid((*n+3)/4, 4)
	case "hypercube":
		g = graph.Hypercube(int(math.Floor(math.Log2(float64(*n)))))
	case "bintree":
		g = graph.BinaryTree(*n)
	case "tree":
		g = graph.RandomTree(*n, stream)
	case "gnp":
		pp := *p
		if pp == 0 {
			pp = 2 * math.Log(float64(*n)) / float64(*n)
		}
		g = graph.Gnp(*n, pp, false, stream)
	case "regular":
		g = graph.RandomRegular(*n, *deg, stream)
	default:
		fmt.Fprintf(os.Stderr, "gen: unknown family %q\n", *family)
		os.Exit(2)
	}

	a := *lifetime
	if a == 0 {
		a = g.N()
	}

	var lab temporal.Labeling
	switch *law {
	case "uniform":
		lab = assign.Uniform(g, a, *r, stream)
	case "geom":
		q := *lawParam
		if q == 0 {
			q = 2 / float64(a)
		}
		lab = assign.FromDistribution(g, dist.NewGeometric(q, a), *r, stream)
	case "binom":
		q := *lawParam
		if q == 0 {
			q = 0.5
		}
		lab = assign.FromDistribution(g, dist.NewBinomial(q, a), *r, stream)
	case "zipf":
		s := *lawParam
		if s == 0 {
			s = 1.1
		}
		lab = assign.FromDistribution(g, dist.NewZipf(s, a), *r, stream)
	default:
		fmt.Fprintf(os.Stderr, "gen: unknown law %q\n", *law)
		os.Exit(2)
	}

	net := temporal.MustNew(g, a, lab)
	fmt.Printf("# family=%s n=%d m=%d lifetime=%d r=%d law=%s seed=%d\n",
		*family, g.N(), g.M(), a, *r, *law, *seed)
	if err := net.Encode(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gen: %v\n", err)
		os.Exit(1)
	}
}
