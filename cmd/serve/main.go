// Command serve runs the experiment service: a JSON HTTP API over the
// E1–E18 drivers and the adaptive sweep engine, with a bounded worker
// pool and an LRU result cache.
//
// Usage:
//
//	serve -addr :8080 -workers 4 -cache 256 -queue 256
//
// Endpoints (see internal/service.NewHandler):
//
//	GET  /experiments               registry metadata
//	GET  /models                    availability-model registry
//	POST /jobs                      {"experiment":"E1","seed":2014,"quick":true}
//	GET  /jobs/{id}                 status + live trial progress
//	GET  /jobs/{id}/result?format=json|csv|md
//	POST /jobs/{id}/cancel          cancel an in-flight job
//	POST /sweeps                    adaptive grid sweep (SweepRequest)
//	GET  /sweeps/{id}               sweep status + per-cell progress
//	GET  /sweeps/{id}/result?format=json|csv|md
//	GET  /healthz                   liveness
//	GET  /stats                     jobs run, cache hit rate, duration p50/p95
//
// Determinism makes the cache sound: a job's numbers depend only on its
// canonical request — experiment (id, seed, quick, model, mp) or sweep
// (model, grid, precision, metric, seed) — so repeated submissions are
// served from cache bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent jobs (0: half of GOMAXPROCS)")
		cache   = flag.Int("cache", 256, "LRU result-cache capacity")
		queue   = flag.Int("queue", 256, "job queue depth")
	)
	flag.Parse()

	m := service.New(service.Options{Workers: *workers, CacheSize: *cache, QueueDepth: *queue})
	defer m.Close()

	srv := &http.Server{
		Addr:         *addr,
		Handler:      logRequests(service.NewHandler(m)),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute, // full-scale results take a while to render
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("serve: experiment service listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	stop()    // no more signals needed; unblocks the goroutine on clean exit
	<-drained // wait for in-flight responses before tearing down the manager
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
