// Command serve runs the experiment service: a JSON HTTP API over the
// E1–E18 drivers and the adaptive sweep engine, with a bounded worker
// pool, an LRU result cache, and the process observability surface.
//
// Usage:
//
//	serve -addr :8080 -workers 4 -cache 256 -queue 256 [-pprof]
//	serve -addr :8080 -net network.tnet -qindex auto -qindex-mem 256
//	serve -addr :8080 -lease-ttl 30s -ckpt-dir /var/lib/repro  # sweep coordinator
//
// With -net the process additionally serves interactive journey queries
// over the loaded temporal network, answered from a precomputed arrival
// index (internal/qindex) with request coalescing:
//
//	GET  /query?src=&dst=&start=[&journey=1]
//	POST /query {"queries":[{"src":0,"dst":9,"start":3},…]}
//	GET  /query/stats
//
// Endpoints (see internal/service.NewHandler):
//
//	GET  /experiments               registry metadata
//	GET  /models                    availability-model registry
//	POST /jobs                      {"experiment":"E1","seed":2014,"quick":true}
//	GET  /jobs/{id}                 status + live trial progress
//	GET  /jobs/{id}/result?format=json|csv|md
//	POST /jobs/{id}/cancel          cancel an in-flight job
//	POST /sweeps                    adaptive grid sweep (SweepRequest)
//	GET  /sweeps/{id}               sweep status + per-cell progress
//	GET  /sweeps/{id}/result?format=json|csv|md
//	POST /sweeps/{id}/lease         distributed sweeps: cell leases (cmd/sweepworker)
//	POST /sweeps/{id}/cells         distributed sweeps: report completed cells
//	POST /sweeps/{id}/heartbeat     distributed sweeps: extend a worker's leases
//	GET  /sweeps/{id}/checkpoint    distributed sweeps: durable progress snapshot
//	GET  /sweeps/{id}/timeline      distributed sweeps: per-cell lease/expiry/completion log
//	GET  /healthz                   liveness
//	GET  /stats                     jobs run, cache hit rate, duration p50/p95/p99
//	GET  /metrics                   Prometheus text exposition (internal/obs),
//	                                including runtime_* health series (GC pause,
//	                                heap, goroutines, sched latency)
//	GET  /debug/trace               recent spans as JSON (internal/obs ring);
//	                                ?trace=&name=&min_dur_us=&limit= filter,
//	                                ?view=tree renders per-trace timelines
//	     /debug/pprof/...           net/http/pprof profiles, with -pprof only
//
// Determinism makes the cache sound: a job's numbers depend only on its
// canonical request — experiment (id, seed, quick, model, mp) or sweep
// (model, grid, precision, metric, seed) — so repeated submissions are
// served from cache bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/qindex"
	"repro/internal/service"
	"repro/internal/temporal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent jobs (0: half of GOMAXPROCS)")
		cache     = flag.Int("cache", 256, "LRU result-cache capacity")
		queue     = flag.Int("queue", 256, "job queue depth")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		netPath   = flag.String("net", "", "temporal network (.tnet) to serve /query over")
		qmode     = flag.String("qindex", "auto", "arrival index mode: auto, full, lru or off")
		qmem      = flag.Int64("qindex-mem", 256, "arrival-index memory budget in MiB")
		accessLog = flag.Bool("access-log", true, "log every request (method, path, status, duration)")
		leaseTTL  = flag.Duration("lease-ttl", service.DefaultLeaseTTL, "distributed sweeps: cell lease lifetime before straggler re-lease")
		ckptDir   = flag.String("ckpt-dir", "", "distributed sweeps: directory for durable per-sweep checkpoints (empty: in-memory only)")
	)
	flag.Parse()

	qe, err := buildQueryEngine(*netPath, *qmode, *qmem)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}

	m := service.New(service.Options{
		Workers: *workers, CacheSize: *cache, QueueDepth: *queue,
		LeaseTTL: *leaseTTL, CheckpointDir: *ckptDir,
	})
	defer m.Close()

	handler := newMux(m, qe, *pprofOn)
	if *accessLog {
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		handler = logRequests(logger, handler)
	}
	srv := newServer(*addr, handler)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("serve: experiment service listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	stop()    // no more signals needed; unblocks the goroutine on clean exit
	<-drained // wait for in-flight responses before tearing down the manager
}

// newServer is the service's http.Server configuration. IdleTimeout
// matters here: workers and pollers hold keep-alive connections, and
// without it an idle connection pins its file descriptor until the peer
// goes away — a slow leak under worker churn.
func newServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:         addr,
		Handler:      handler,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute, // full-scale results take a while to render
		IdleTimeout:  2 * time.Minute,
	}
}

// buildQueryEngine loads the network at path and precomputes its arrival
// index; a "" path means no query surface (qe == nil).
func buildQueryEngine(path, mode string, memMiB int64) (*service.QueryEngine, error) {
	if path == "" {
		return nil, nil
	}
	qm, err := qindex.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := temporal.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	ix := qindex.New(net, qindex.Options{Mode: qm, MemBudget: memMiB << 20})
	st := ix.Stats()
	log.Printf("serve: query index over %s: n=%d mode=%s resident_rows=%d build_ms=%d",
		path, st.N, st.Mode, st.ResidentRows, st.BuildMS)
	return service.NewQueryEngine(ix), nil
}

// newMux assembles the full handler: the service API plus the
// observability endpoints, with the pprof handlers mounted only when
// requested (profiling endpoints are too sharp to expose by default).
func newMux(m *service.Manager, qe *service.QueryEngine, pprofOn bool) http.Handler {
	obs.RegisterRuntimeMetrics() // runtime_* health series, sampled at scrape time
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Handler())
	mux.Handle("GET /debug/trace", obs.TraceHandler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", service.NewHandlerWith(m, qe))
	return mux
}

// logRequests is the structured access log: method, path, status, body
// bytes and wall time per request.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := obs.NewResponseRecorder(w)
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.Status(),
			"bytes", rec.Bytes(),
			"duration", time.Since(start).Round(time.Microsecond),
		)
	})
}
