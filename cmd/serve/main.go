// Command serve runs the experiment service: a JSON HTTP API over the
// E1–E18 drivers and the adaptive sweep engine, with a bounded worker
// pool, an LRU result cache, and the process observability surface.
//
// Usage:
//
//	serve -addr :8080 -workers 4 -cache 256 -queue 256 [-pprof]
//
// Endpoints (see internal/service.NewHandler):
//
//	GET  /experiments               registry metadata
//	GET  /models                    availability-model registry
//	POST /jobs                      {"experiment":"E1","seed":2014,"quick":true}
//	GET  /jobs/{id}                 status + live trial progress
//	GET  /jobs/{id}/result?format=json|csv|md
//	POST /jobs/{id}/cancel          cancel an in-flight job
//	POST /sweeps                    adaptive grid sweep (SweepRequest)
//	GET  /sweeps/{id}               sweep status + per-cell progress
//	GET  /sweeps/{id}/result?format=json|csv|md
//	GET  /healthz                   liveness
//	GET  /stats                     jobs run, cache hit rate, duration p50/p95/p99
//	GET  /metrics                   Prometheus text exposition (internal/obs)
//	GET  /debug/trace               recent spans as JSON (internal/obs ring)
//	     /debug/pprof/...           net/http/pprof profiles, with -pprof only
//
// Determinism makes the cache sound: a job's numbers depend only on its
// canonical request — experiment (id, seed, quick, model, mp) or sweep
// (model, grid, precision, metric, seed) — so repeated submissions are
// served from cache bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent jobs (0: half of GOMAXPROCS)")
		cache   = flag.Int("cache", 256, "LRU result-cache capacity")
		queue   = flag.Int("queue", 256, "job queue depth")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	m := service.New(service.Options{Workers: *workers, CacheSize: *cache, QueueDepth: *queue})
	defer m.Close()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := &http.Server{
		Addr:         *addr,
		Handler:      logRequests(logger, newMux(m, *pprofOn)),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute, // full-scale results take a while to render
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("serve: experiment service listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	stop()    // no more signals needed; unblocks the goroutine on clean exit
	<-drained // wait for in-flight responses before tearing down the manager
}

// newMux assembles the full handler: the service API plus the
// observability endpoints, with the pprof handlers mounted only when
// requested (profiling endpoints are too sharp to expose by default).
func newMux(m *service.Manager, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Handler())
	mux.Handle("GET /debug/trace", obs.TraceHandler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", service.NewHandler(m))
	return mux
}

// logRequests is the structured access log: method, path, status, body
// bytes and wall time per request.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := obs.NewResponseRecorder(w)
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.Status(),
			"bytes", rec.Bytes(),
			"duration", time.Since(start).Round(time.Microsecond),
		)
	})
}
