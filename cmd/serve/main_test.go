package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/temporal"
)

func testMux(t *testing.T, pprofOn bool) http.Handler {
	t.Helper()
	m := service.New(service.Options{Workers: 1})
	t.Cleanup(m.Close)
	return newMux(m, nil, pprofOn)
}

// TestServerTimeouts pins the http.Server hardening: without IdleTimeout
// every keep-alive connection from pollers and sweep workers pins a file
// descriptor forever once idle.
func TestServerTimeouts(t *testing.T) {
	srv := newServer(":0", http.NewServeMux())
	if srv.ReadTimeout != 30*time.Second {
		t.Errorf("ReadTimeout = %v, want 30s", srv.ReadTimeout)
	}
	if srv.WriteTimeout != 5*time.Minute {
		t.Errorf("WriteTimeout = %v, want 5m", srv.WriteTimeout)
	}
	if srv.IdleTimeout != 2*time.Minute {
		t.Errorf("IdleTimeout = %v, want 2m", srv.IdleTimeout)
	}
	if srv.Addr != ":0" {
		t.Errorf("Addr = %q", srv.Addr)
	}
}

// TestMetricsEndpoint asserts GET /metrics serves parseable Prometheus
// text covering every instrumented layer. The instrument families are
// registered at package init, so they are present (at zero) even before
// any job runs.
func TestMetricsEndpoint(t *testing.T) {
	h := testMux(t, false)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics → %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, series := range []string{
		"sim_trials_started_total",
		"sim_batch_resample_trials_total",
		`temporal_index_builds_total{index="timeedges"}`,
		`temporal_diameter_race_total{winner="frontier"}`,
		"sweep_cells_completed_total",
		"sweep_batch_size_count",
		"service_jobs_submitted_total",
		"service_queue_depth",
		"sweep_lease_granted_total",
		"sweep_lease_expired_total",
		"sweep_leases_active",
		"sweep_duplicate_cells_total",
		"service_sweep_ckpt_write_errors_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	if _, err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("scrape unparseable: %v", err)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	h := testMux(t, false)
	obs.StartSpan("serve_test_span").End()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/trace → %d", rec.Code)
	}
	var dump struct {
		Capacity int               `json:"capacity"`
		Recorded uint64            `json:"recorded"`
		Spans    []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if dump.Capacity < 1 || dump.Recorded < 1 {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestPprofGating(t *testing.T) {
	for _, on := range []bool{false, true} {
		h := testMux(t, on)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
		if on && rec.Code != http.StatusOK {
			t.Fatalf("-pprof on: GET /debug/pprof/ → %d", rec.Code)
		}
		if !on && rec.Code != http.StatusNotFound {
			t.Fatalf("-pprof off: GET /debug/pprof/ → %d, want 404", rec.Code)
		}
	}
}

// TestAccessLog drives the logging middleware and asserts the structured
// record carries the response's real status and byte count.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	})
	rec := httptest.NewRecorder()
	logRequests(logger, inner).ServeHTTP(rec, httptest.NewRequest("GET", "/teapot", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "short and stout" {
		t.Fatalf("middleware altered the response: %d %q", rec.Code, rec.Body.String())
	}
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/teapot", "status=418", "bytes=15"} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %s", want, line)
		}
	}
}

// TestQueryMode drives the -net path end to end: encode a network to
// disk, build the engine the way main does, and serve /query and
// /query/stats through the full serve mux, checking the qindex metric
// families land in /metrics.
func TestQueryMode(t *testing.T) {
	g := graph.Grid(3, 3)
	stream := rng.New(9)
	sets := make([][]int, g.M())
	for e := range sets {
		sets[e] = []int{1 + stream.Intn(8), 1 + stream.Intn(8)}
	}
	net := temporal.MustNew(g, 8, temporal.LabelingFromSets(sets))
	path := filepath.Join(t.TempDir(), "q.tnet")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	qe, err := buildQueryEngine(path, "full", 64)
	if err != nil {
		t.Fatalf("buildQueryEngine: %v", err)
	}
	m := service.New(service.Options{Workers: 1})
	t.Cleanup(m.Close)
	h := newMux(m, qe, false)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query?src=0&dst=8", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /query → %d: %s", rec.Code, rec.Body.String())
	}
	var ans struct {
		Arrival int32 `json:"arrival"`
		Reached bool  `json:"reached"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
		t.Fatalf("bad answer: %v", err)
	}
	if want := net.EarliestArrivals(0)[8]; want == temporal.Unreachable {
		if ans.Reached {
			t.Fatalf("want unreachable, got %+v", ans)
		}
	} else if !ans.Reached || ans.Arrival != want {
		t.Fatalf("arrival %d reached=%v, want %d", ans.Arrival, ans.Reached, want)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query/stats", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"mode":"full"`) {
		t.Fatalf("GET /query/stats → %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, series := range []string{"qindex_hits_total", "qindex_rows_computed_total", "qindex_resident_rows"} {
		if !strings.Contains(rec.Body.String(), series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestBuildQueryEngineErrors covers the no-op and failure paths.
func TestBuildQueryEngineErrors(t *testing.T) {
	if qe, err := buildQueryEngine("", "auto", 1); qe != nil || err != nil {
		t.Fatalf("empty path → (%v, %v), want (nil, nil)", qe, err)
	}
	if _, err := buildQueryEngine("nope.tnet", "banana", 1); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := buildQueryEngine(filepath.Join(t.TempDir(), "missing.tnet"), "auto", 1); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.tnet")
	if err := os.WriteFile(bad, []byte("not a tnet"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildQueryEngine(bad, "auto", 1); err == nil {
		t.Fatal("garbage network accepted")
	}
}

// TestConcurrentScrape races /metrics scrapes against request traffic on
// the instrumented service mux — run under -race this is the
// shared-registry concurrency check at the endpoint level.
func TestConcurrentScrape(t *testing.T) {
	h := testMux(t, false)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
			}
		}()
	}
	for i := 0; i < 25; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("scrape %d → %d", i, rec.Code)
		}
		if _, err := obs.Lint(strings.NewReader(rec.Body.String())); err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
