package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
)

func testMux(t *testing.T, pprofOn bool) http.Handler {
	t.Helper()
	m := service.New(service.Options{Workers: 1})
	t.Cleanup(m.Close)
	return newMux(m, pprofOn)
}

// TestMetricsEndpoint asserts GET /metrics serves parseable Prometheus
// text covering every instrumented layer. The instrument families are
// registered at package init, so they are present (at zero) even before
// any job runs.
func TestMetricsEndpoint(t *testing.T) {
	h := testMux(t, false)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics → %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, series := range []string{
		"sim_trials_started_total",
		"sim_batch_resample_trials_total",
		`temporal_index_builds_total{index="timeedges"}`,
		`temporal_diameter_race_total{winner="frontier"}`,
		"sweep_cells_completed_total",
		"sweep_batch_size_count",
		"service_jobs_submitted_total",
		"service_queue_depth",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	if _, err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("scrape unparseable: %v", err)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	h := testMux(t, false)
	obs.StartSpan("serve_test_span").End()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/trace → %d", rec.Code)
	}
	var dump struct {
		Capacity int               `json:"capacity"`
		Recorded uint64            `json:"recorded"`
		Spans    []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if dump.Capacity < 1 || dump.Recorded < 1 {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestPprofGating(t *testing.T) {
	for _, on := range []bool{false, true} {
		h := testMux(t, on)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
		if on && rec.Code != http.StatusOK {
			t.Fatalf("-pprof on: GET /debug/pprof/ → %d", rec.Code)
		}
		if !on && rec.Code != http.StatusNotFound {
			t.Fatalf("-pprof off: GET /debug/pprof/ → %d, want 404", rec.Code)
		}
	}
}

// TestAccessLog drives the logging middleware and asserts the structured
// record carries the response's real status and byte count.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	})
	rec := httptest.NewRecorder()
	logRequests(logger, inner).ServeHTTP(rec, httptest.NewRequest("GET", "/teapot", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "short and stout" {
		t.Fatalf("middleware altered the response: %d %q", rec.Code, rec.Body.String())
	}
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/teapot", "status=418", "bytes=15"} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %s", want, line)
		}
	}
}

// TestConcurrentScrape races /metrics scrapes against request traffic on
// the instrumented service mux — run under -race this is the
// shared-registry concurrency check at the endpoint level.
func TestConcurrentScrape(t *testing.T) {
	h := testMux(t, false)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
			}
		}()
	}
	for i := 0; i < 25; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("scrape %d → %d", i, rec.Code)
		}
		if _, err := obs.Lint(strings.NewReader(rec.Body.String())); err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
