// Command benchjson converts `go test -bench` output (the Go benchmark
// text format, benchfmt) read from stdin into a JSON document on stdout,
// so CI can archive kernel benchmark results as a machine-readable
// artifact and the performance trajectory can be diffed PR-over-PR.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkKernel -benchmem . | benchjson > BENCH_kernels.json
//
// Configuration lines (goos, goarch, pkg, cpu) become top-level fields;
// each benchmark line becomes an entry with its name, GOMAXPROCS suffix,
// iteration count and every reported metric keyed by unit (ns/op, B/op,
// allocs/op and any b.ReportMetric unit).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// GOMAXPROCS suffix, e.g. "KernelEarliestArrival/clique-256".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran with.
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op" → 195509.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// gomaxprocs is the GOMAXPROCS the benchmarks ran with. The testing
// package appends "-N" to benchmark names only when GOMAXPROCS != 1, and
// config sub-benchmark names like "clique-256" end in digits too, so the
// suffix is stripped only when it equals this value. The default is right
// when benchjson runs on the machine that ran the benchmarks (the make
// bench pipeline); pass -procs otherwise.
var gomaxprocs = flag.Int("procs", runtime.GOMAXPROCS(0), "GOMAXPROCS of the benchmark run")

func main() {
	flag.Parse()
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndexByte(name, '-'); i >= 0 && *gomaxprocs != 1 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p == *gomaxprocs {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value in %q: %v", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
